"""Tests for Dennard counterfactuals and beyond-5nm extrapolation."""

import pytest

from repro.cmos.history import (
    cost_of_the_wall,
    dennard_gap,
    dennard_gap_series,
    dennard_ideal,
    extrapolated_table,
)


class TestDennardIdeal:
    def test_reference_is_identity(self):
        ideal = dennard_ideal(45.0)
        assert ideal.frequency == pytest.approx(1.0)
        assert ideal.vdd == pytest.approx(1.0)

    def test_ideal_rules(self):
        ideal = dennard_ideal(22.5)  # shrink of exactly 2
        assert ideal.frequency == pytest.approx(2.0)
        assert ideal.vdd == pytest.approx(0.5)
        assert ideal.capacitance == pytest.approx(0.5)

    def test_constant_power_density(self):
        # Per-area dynamic power: s^2 devices * C V^2 f = s^2 * (1/s)(1/s^2)(s) = 1.
        for node in (22.5, 11.25, 5.625):
            ideal = dennard_ideal(node)
            shrink = 45.0 / node
            density = shrink**2 * ideal.dynamic_energy * ideal.frequency
            assert density == pytest.approx(1.0)


class TestDennardGap:
    def test_gap_grows_with_scaling(self):
        series = dennard_gap_series()
        shortfalls = [series[n].frequency_shortfall for n in sorted(series, reverse=True)]
        assert shortfalls == sorted(shortfalls)
        assert shortfalls[-1] > 3.0  # 5nm fell >3x short of Dennard frequency

    def test_power_density_excess_grows(self):
        series = dennard_gap_series()
        excesses = [series[n].power_density_excess for n in sorted(series, reverse=True)]
        assert excesses == sorted(excesses)
        assert excesses[-1] > 5.0  # the dark-silicon driver

    def test_45nm_has_no_gap(self):
        gap = dennard_gap(45.0)
        assert gap.frequency_shortfall == pytest.approx(1.0)
        assert gap.power_density_excess == pytest.approx(1.0)


class TestBeyond5nm:
    def test_extrapolated_table_covers_new_nodes(self):
        table = extrapolated_table((3.0, 2.0))
        assert table.scaling(3.0).frequency > table.scaling(5.0).frequency
        assert table.scaling(2.0).capacitance < table.scaling(3.0).capacitance

    def test_non_monotone_nodes_rejected(self):
        with pytest.raises(ValueError):
            extrapolated_table((6.0,))

    def test_cost_of_the_wall_shape(self):
        result = cost_of_the_wall(beyond_node=3.0)
        # An extra node still grows the *potential*...
        assert result["uncapped_throughput_gain"] > 1.0
        # ...but under a fixed envelope the active fraction collapses and
        # the net gain is marginal at best: the wall is a power wall too.
        assert result["capped_throughput_gain"] < 1.3
        assert (
            result["active_fraction_beyond"]
            < result["active_fraction_at_wall"]
        )
