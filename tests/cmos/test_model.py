"""Unit tests for the CmosPotentialModel facade."""

import pytest

from repro.cmos.model import CmosPotentialModel
from repro.datasheets.schema import Category, ChipSpec


@pytest.fixture(scope="module")
def spec_old():
    return ChipSpec(
        name="old", category=Category.ASIC, node_nm=45, area_mm2=100,
        frequency_mhz=1000, tdp_w=100,
    )


@pytest.fixture(scope="module")
def spec_new():
    return ChipSpec(
        name="new", category=Category.ASIC, node_nm=7, area_mm2=100,
        frequency_mhz=1500, tdp_w=100,
    )


class TestConstruction:
    def test_paper_model_uses_published_constants(self, paper_model):
        assert paper_model.density_fit.coefficient == pytest.approx(4.99e9)
        assert len(paper_model.tdp_model.fits) == 4

    def test_from_database(self, reference_db):
        model = CmosPotentialModel.from_database(reference_db)
        assert model.density_fit.n_points == len(reference_db)

    def test_reference_constructor(self):
        model = CmosPotentialModel.reference()
        assert model.density_fit.n_points > 1000


class TestEvaluateSpec:
    def test_capped_by_default(self, paper_model, spec_new):
        capped = paper_model.evaluate_spec(spec_new)
        uncapped = paper_model.evaluate_spec(spec_new, capped=False)
        assert capped.gains.throughput <= uncapped.gains.throughput

    def test_empirical_mode_uses_fig3c_budget(self, paper_model, spec_new):
        physical = paper_model.evaluate_spec(spec_new, capped="empirical")
        budget = paper_model.active_budget(7, 100.0, 1500.0)
        expected = min(budget, physical.gains.potential_transistors)
        assert physical.gains.active_transistors == pytest.approx(expected)

    def test_empirical_uncapped_when_budget_generous(self, paper_model):
        tiny = ChipSpec(
            name="tiny", category=Category.ASIC, node_nm=28, area_mm2=3,
            frequency_mhz=300, tdp_w=0.1,
        )
        physical = paper_model.evaluate_spec(tiny, capped="empirical")
        assert not physical.gains.tdp_limited

    def test_bad_cap_mode_rejected(self, paper_model):
        with pytest.raises(ValueError):
            paper_model.evaluate(45, 1000, area_mm2=100, tdp_w=50, cap_mode="magic")

    def test_physical_chip_metric_passthrough(self, paper_model, spec_old):
        physical = paper_model.evaluate_spec(spec_old)
        assert physical.metric("throughput") == physical.gains.throughput
        assert physical.name == "old"


class TestPotentialGain:
    def test_newer_chip_has_physical_gain(self, paper_model, spec_old, spec_new):
        gain = paper_model.potential_gain(spec_new, spec_old)
        assert gain > 1.0

    def test_gain_antisymmetry(self, paper_model, spec_old, spec_new):
        forward = paper_model.potential_gain(spec_new, spec_old)
        backward = paper_model.potential_gain(spec_old, spec_new)
        assert forward * backward == pytest.approx(1.0)

    def test_gain_of_chip_over_itself_is_one(self, paper_model, spec_old):
        assert paper_model.potential_gain(spec_old, spec_old) == pytest.approx(1.0)

    def test_energy_metric_supported(self, paper_model, spec_old, spec_new):
        gain = paper_model.potential_gain(
            spec_new, spec_old, metric="energy_efficiency"
        )
        assert gain > 1.0


class TestFig3dGrid:
    def test_grid_dimensions(self, paper_model):
        grid = paper_model.fig3d_grid(
            nodes=(45, 16, 5), dies_mm2=(25, 100), tdp_zones_w=(50, None)
        )
        assert len(grid) == 3 * 2 * 2

    def test_normalisation_corner_is_unity(self, paper_model):
        grid = paper_model.fig3d_grid(
            nodes=(45, 5), dies_mm2=(25, 800), tdp_zones_w=(None,)
        )
        corner = grid[(45.0, 25.0, None)]
        assert corner["throughput"] == pytest.approx(1.0)
        assert corner["energy_efficiency"] == pytest.approx(1.0)

    def test_tdp_zone_never_beats_uncapped(self, paper_model):
        grid = paper_model.fig3d_grid(
            nodes=(45, 5), dies_mm2=(25, 800), tdp_zones_w=(50, None)
        )
        for node in (45.0, 5.0):
            for die in (25.0, 800.0):
                assert (
                    grid[(node, die, 50.0)]["throughput"]
                    <= grid[(node, die, None)]["throughput"] + 1e-9
                )
