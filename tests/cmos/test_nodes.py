"""Unit tests for the process-node registry."""

import pytest

from repro.cmos.nodes import (
    CANONICAL_NODES,
    FINAL_NODE,
    NODE_ERAS_DENSITY,
    NODE_ERAS_TDP,
    NodeEra,
    density_factor,
    era_for_node,
    nodes_between,
    parse_node,
)
from repro.errors import UnknownNodeError


class TestParseNode:
    def test_parses_float(self):
        assert parse_node(28.0) == 28.0

    def test_parses_int(self):
        assert parse_node(45) == 45.0

    def test_parses_string_with_suffix(self):
        assert parse_node("28nm") == 28.0

    def test_parses_string_case_insensitive(self):
        assert parse_node("16NM") == 16.0

    def test_parses_string_with_spaces(self):
        assert parse_node(" 7 nm ") == 7.0

    def test_parses_fractional(self):
        assert parse_node("6.5nm") == 6.5

    def test_rejects_below_range(self):
        with pytest.raises(UnknownNodeError):
            parse_node(0.5)

    def test_rejects_above_range(self):
        with pytest.raises(UnknownNodeError):
            parse_node(300)

    def test_counterfactual_sub_5nm_allowed(self):
        # repro.cmos.history extrapolates below the real roadmap.
        assert parse_node(3) == 3.0

    def test_rejects_garbage_string(self):
        with pytest.raises(UnknownNodeError):
            parse_node("finfet")

    def test_rejects_negative(self):
        with pytest.raises(UnknownNodeError):
            parse_node(-28)

    def test_error_mentions_range(self):
        with pytest.raises(UnknownNodeError, match="5"):
            parse_node(1000)


class TestDensityFactor:
    def test_matches_definition(self):
        # A 100mm^2 die at 10nm: D = 100 / 100 = 1.0.
        assert density_factor(100.0, 10.0) == pytest.approx(1.0)

    def test_scales_linearly_with_area(self):
        assert density_factor(200.0, 10.0) == pytest.approx(
            2 * density_factor(100.0, 10.0)
        )

    def test_scales_inverse_square_with_node(self):
        assert density_factor(100.0, 5.0) == pytest.approx(
            4 * density_factor(100.0, 10.0)
        )

    def test_rejects_non_positive_area(self):
        with pytest.raises(ValueError):
            density_factor(0.0, 10.0)

    def test_accepts_string_node(self):
        assert density_factor(100.0, "10nm") == pytest.approx(1.0)


class TestNodeEra:
    def test_contains_inclusive_bounds(self):
        era = NodeEra("t", 20.0, 40.0)
        assert 20.0 in era and 40.0 in era and 28.0 in era

    def test_excludes_outside(self):
        era = NodeEra("t", 20.0, 40.0)
        assert 16.0 not in era and 45.0 not in era

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            NodeEra("t", 40.0, 20.0)

    def test_midpoint_is_geometric(self):
        era = NodeEra("t", 10.0, 40.0)
        assert era.midpoint_nm == pytest.approx(20.0)

    def test_contains_rejects_garbage(self):
        era = NodeEra("t", 20.0, 40.0)
        assert "junk" not in era


class TestEraLookup:
    def test_every_canonical_node_has_nearest_era(self):
        for node in CANONICAL_NODES:
            assert era_for_node(node) is not None

    def test_exact_membership(self):
        assert era_for_node(28).name == "32nm-28nm"
        assert era_for_node(5).name == "10nm-5nm"
        assert era_for_node(45).name == "55nm-40nm"

    def test_gap_maps_to_nearest(self):
        # 65nm sits above the 55-40 era; nearest is 55-40.
        assert era_for_node(65).name == "55nm-40nm"

    def test_gap_returns_none_when_strict(self):
        assert era_for_node(65, nearest=False) is None

    def test_density_eras_cover_expected_nodes(self):
        names = [era.name for era in NODE_ERAS_DENSITY]
        assert names == ["180nm-90nm", "80nm-45nm", "40nm-20nm", "16nm-12nm"]

    def test_tdp_eras_are_disjoint(self):
        for i, a in enumerate(NODE_ERAS_TDP):
            for b in NODE_ERAS_TDP[i + 1:]:
                assert a.newest_nm > b.oldest_nm or b.newest_nm > a.oldest_nm


class TestNodesBetween:
    def test_inclusive_and_sorted_oldest_first(self):
        assert nodes_between(45, 28) == (45.0, 40.0, 32.0, 28.0)

    def test_argument_order_does_not_matter(self):
        assert nodes_between(28, 45) == nodes_between(45, 28)

    def test_final_node_constant(self):
        assert FINAL_NODE == 5.0
        assert FINAL_NODE in CANONICAL_NODES
