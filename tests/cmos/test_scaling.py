"""Unit + property tests for the device-scaling table (Fig 3a)."""

import pytest
from hypothesis import given, strategies as st

from repro.cmos.scaling import REFERENCE_NODE, ScalingTable, default_scaling_table
from repro.errors import UnknownNodeError

TABLE = default_scaling_table()


class TestAnchors:
    def test_reference_node_is_unity(self):
        rel = TABLE.relative(REFERENCE_NODE)
        assert rel.frequency == pytest.approx(1.0)
        assert rel.capacitance == pytest.approx(1.0)
        assert rel.leakage_power == pytest.approx(1.0)

    def test_nodes_listed_newest_last(self):
        nodes = TABLE.nodes
        assert nodes[0] == 180.0 and nodes[-1] == 5.0

    def test_frequency_improves_monotonically_with_scaling(self):
        values = [TABLE.scaling(n).frequency for n in sorted(TABLE.nodes, reverse=True)]
        assert values == sorted(values)

    def test_capacitance_shrinks_monotonically(self):
        values = [TABLE.scaling(n).capacitance for n in sorted(TABLE.nodes, reverse=True)]
        assert values == sorted(values, reverse=True)

    def test_leakage_shrinks_monotonically(self):
        values = [
            TABLE.scaling(n).leakage_power for n in sorted(TABLE.nodes, reverse=True)
        ]
        assert values == sorted(values, reverse=True)

    def test_vdd_shrinks_monotonically(self):
        values = [TABLE.scaling(n).vdd for n in sorted(TABLE.nodes, reverse=True)]
        assert values == sorted(values, reverse=True)

    def test_dynamic_energy_derived_from_cap_and_vdd(self):
        s = TABLE.scaling(28)
        assert s.dynamic_energy == pytest.approx(s.capacitance * s.vdd**2)

    def test_relative_dynamic_energy_is_exact_ratio(self):
        a, b = TABLE.scaling(16), TABLE.scaling(45)
        rel = a.relative_to(b)
        assert rel.dynamic_energy == pytest.approx(
            a.dynamic_energy / b.dynamic_energy
        )


class TestInterpolation:
    @given(st.floats(min_value=5.0, max_value=180.0))
    def test_interpolated_values_within_neighbour_bounds(self, node):
        s = TABLE.scaling(node)
        anchors = sorted(TABLE.nodes)
        lo = max(a for a in anchors if a <= node)
        hi = min(a for a in anchors if a >= node)
        lo_s, hi_s = TABLE.scaling(lo), TABLE.scaling(hi)
        for attr in ("vdd", "frequency", "capacitance", "leakage_power"):
            value = getattr(s, attr)
            bounds = sorted([getattr(lo_s, attr), getattr(hi_s, attr)])
            assert bounds[0] - 1e-12 <= value <= bounds[1] + 1e-12

    def test_exact_anchor_roundtrip(self):
        for node in TABLE.nodes:
            assert TABLE.scaling(node).node_nm == node

    def test_out_of_range_raises(self):
        with pytest.raises(UnknownNodeError):
            TABLE.scaling(4.0)

    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            ScalingTable({45.0: (1.0, 1.0, 1.0, 1.0)})


class TestRelative:
    def test_relative_to_self_is_unity(self):
        rel = TABLE.relative(16, 16)
        assert rel.frequency == pytest.approx(1.0)
        assert rel.dynamic_energy == pytest.approx(1.0)

    def test_relative_composes(self):
        # (5 rel 45) == (5 rel 16) * (16 rel 45) component-wise.
        a = TABLE.relative(5, 45)
        b = TABLE.relative(5, 16)
        c = TABLE.relative(16, 45)
        assert a.frequency == pytest.approx(b.frequency * c.frequency)
        assert a.capacitance == pytest.approx(b.capacitance * c.capacitance)

    def test_newer_node_is_better_on_every_axis(self):
        rel = TABLE.relative(5, 45)
        assert rel.frequency > 1.0
        assert rel.capacitance < 1.0
        assert rel.vdd < 1.0
        assert rel.leakage_power < 1.0
        assert rel.dynamic_energy < 1.0


class TestFig3aSeries:
    def test_panels_present(self):
        series = TABLE.fig3a_series()
        assert set(series) == {
            "leakage_power", "capacitance", "vdd", "frequency", "dynamic_power",
        }

    def test_all_series_start_at_one_and_decrease(self):
        series = TABLE.fig3a_series()
        for name, panel in series.items():
            nodes = sorted(panel, reverse=True)
            assert panel[nodes[0]] == pytest.approx(1.0), name
            values = [panel[n] for n in nodes]
            assert values == sorted(values, reverse=True), name
            assert all(v > 0 for v in values), name

    def test_5nm_values_in_paper_band(self):
        # Fig 3a's curves land between ~0.15 and ~0.6 at 5nm.
        series = TABLE.fig3a_series()
        for name, panel in series.items():
            assert 0.05 < panel[5.0] < 0.7, name
