"""Unit tests for the Fig 3c TDP transistor-budget model."""

import pytest

from repro.cmos.nodes import NODE_ERAS_TDP
from repro.cmos.tdp import (
    PAPER_TDP_FITS,
    TdpFit,
    TdpModel,
    fit_tdp_model,
    paper_tdp_model,
)
from repro.errors import FitError


class TestTdpFit:
    @pytest.fixture
    def fit(self):
        return TdpFit(era=NODE_ERAS_TDP[2], coefficient=0.49, exponent=0.557)

    def test_budget_product_matches_law(self, fit):
        assert fit.budget_product(100.0) == pytest.approx(0.49 * 100**0.557)

    def test_active_transistors_inverse_of_frequency(self, fit):
        slow = fit.active_transistors(100.0, 1000.0)
        fast = fit.active_transistors(100.0, 2000.0)
        assert slow == pytest.approx(2 * fast)

    def test_tdp_for_roundtrip(self, fit):
        active = fit.active_transistors(150.0, 1500.0)
        assert fit.tdp_for(active, 1500.0) == pytest.approx(150.0)

    def test_rejects_non_positive_tdp(self, fit):
        with pytest.raises(ValueError):
            fit.budget_product(0.0)

    def test_rejects_non_positive_frequency(self, fit):
        with pytest.raises(ValueError):
            fit.active_transistors(100.0, 0.0)

    def test_describe_contains_era(self, fit):
        assert "22nm-12nm" in fit.describe()


class TestPaperModel:
    def test_all_four_eras_present(self):
        model = paper_tdp_model()
        assert [fit.era.name for fit in model.fits] == [
            "55nm-40nm", "32nm-28nm", "22nm-12nm", "10nm-5nm",
        ]

    def test_newer_eras_have_larger_coefficient_smaller_exponent(self):
        model = paper_tdp_model()
        coefficients = [fit.coefficient for fit in model.fits]
        exponents = [fit.exponent for fit in model.fits]
        assert coefficients == sorted(coefficients)
        assert exponents == sorted(exponents, reverse=True)

    def test_node_lookup_nearest_era(self):
        model = paper_tdp_model()
        assert model.era_fit(28).era.name == "32nm-28nm"
        assert model.era_fit(65).era.name == "55nm-40nm"  # nearest
        assert model.era_fit(7).era.name == "10nm-5nm"

    def test_newer_node_supports_more_transistors_at_same_tdp(self):
        model = paper_tdp_model()
        # At 100W / 1GHz, each era jump multiplies the active budget.
        budgets = [
            model.active_transistors(node, 100.0, 1000.0)
            for node in (45, 28, 16, 7)
        ]
        assert budgets == sorted(budgets)

    def test_empty_model_rejected(self):
        with pytest.raises(FitError):
            TdpModel([])


class TestFittedModel:
    def test_synthetic_population_recovers_paper_constants(self, reference_db):
        model = fit_tdp_model(reference_db)
        for fit in model.fits:
            paper_c, paper_e = PAPER_TDP_FITS[fit.era.name]
            assert fit.coefficient == pytest.approx(paper_c, rel=0.35), fit.era.name
            assert fit.exponent == pytest.approx(paper_e, rel=0.15), fit.era.name

    def test_sparse_era_falls_back_to_paper_constants(self, curated_db):
        # The curated seed has almost no 10nm-5nm chips; fallback applies.
        model = fit_tdp_model(curated_db)
        fit = model.era_fit(5)
        paper_c, paper_e = PAPER_TDP_FITS["10nm-5nm"]
        assert (fit.coefficient, fit.exponent) == (paper_c, paper_e)
