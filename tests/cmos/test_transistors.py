"""Unit + property tests for the Fig 3b transistor-count regression."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cmos.transistors import (
    PAPER_DENSITY_FIT,
    TransistorCountFit,
    fit_power_law,
    fit_transistor_count,
)
from repro.errors import FitError


class TestPaperFit:
    def test_paper_constants(self):
        assert PAPER_DENSITY_FIT.coefficient == pytest.approx(4.99e9)
        assert PAPER_DENSITY_FIT.exponent == pytest.approx(0.877)

    def test_sublinear_scaling(self):
        # Doubling density less than doubles transistor count.
        tc1 = PAPER_DENSITY_FIT.transistors(1.0)
        tc2 = PAPER_DENSITY_FIT.transistors(2.0)
        assert tc1 < tc2 < 2 * tc1

    def test_large_5nm_chip_reaches_100_billion(self):
        # Paper: "for large 5nm CMOS chips (D <= 30) the number of
        # transistors can reach 100 billion".
        assert PAPER_DENSITY_FIT.transistors(30.0) >= 0.9e11

    def test_inverse_roundtrip(self):
        density = 3.7
        tc = PAPER_DENSITY_FIT.transistors(density)
        assert PAPER_DENSITY_FIT.density_for(tc) == pytest.approx(density)

    def test_area_roundtrip(self):
        tc = PAPER_DENSITY_FIT.transistors_for_chip(250.0, 14.0)
        assert PAPER_DENSITY_FIT.area_for(tc, 14.0) == pytest.approx(250.0)

    def test_rejects_non_positive_density(self):
        with pytest.raises(ValueError):
            PAPER_DENSITY_FIT.transistors(0.0)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            PAPER_DENSITY_FIT.density_for(-5.0)

    def test_describe_mentions_constants(self):
        text = PAPER_DENSITY_FIT.describe()
        assert "4.99e9" in text and "0.877" in text

    def test_rejects_non_positive_coefficient(self):
        with pytest.raises(FitError):
            TransistorCountFit(coefficient=-1.0, exponent=0.9)


class TestFitPowerLaw:
    def test_recovers_exact_law(self):
        x = np.logspace(-2, 2, 50)
        y = 3.5 * x**0.8
        coefficient, exponent, r2 = fit_power_law(x, y)
        assert coefficient == pytest.approx(3.5, rel=1e-9)
        assert exponent == pytest.approx(0.8, rel=1e-9)
        assert r2 == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.2, max_value=2.0),
    )
    def test_recovers_arbitrary_noiseless_law(self, coefficient, exponent):
        x = np.logspace(-1, 1, 20)
        y = coefficient * x**exponent
        got_c, got_e, r2 = fit_power_law(x, y)
        assert got_c == pytest.approx(coefficient, rel=1e-6)
        assert got_e == pytest.approx(exponent, rel=1e-6, abs=1e-9)

    def test_ignores_non_positive_points(self):
        x = np.array([0.0, -1.0, 1.0, 2.0, 4.0])
        y = np.array([5.0, 5.0, 2.0, 4.0, 8.0])
        coefficient, exponent, _ = fit_power_law(x, y)
        assert exponent == pytest.approx(1.0)
        assert coefficient == pytest.approx(2.0)

    def test_too_few_points_raises(self):
        with pytest.raises(FitError):
            fit_power_law(np.array([1.0]), np.array([2.0]))

    def test_nan_points_dropped(self):
        x = np.array([np.nan, 1.0, 2.0, 4.0])
        y = np.array([1.0, 2.0, 4.0, 8.0])
        _, exponent, _ = fit_power_law(x, y)
        assert exponent == pytest.approx(1.0)


class TestDatabaseFit:
    def test_synthetic_population_recovers_paper_constants(self, reference_db):
        fit = fit_transistor_count(reference_db)
        assert fit.coefficient == pytest.approx(4.99e9, rel=0.10)
        assert fit.exponent == pytest.approx(0.877, rel=0.05)
        assert fit.r2 > 0.9
        assert fit.n_points == len(reference_db)

    def test_curated_only_fit_is_plausible(self, curated_db):
        # Real chips alone give a noisier but same-ballpark law.
        fit = fit_transistor_count(curated_db)
        assert 0.6 < fit.exponent < 1.1
        assert 1e9 < fit.coefficient < 3e10
