"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cmos.model import CmosPotentialModel
from repro.datasheets.curated import curated_database
from repro.datasheets.reference import reference_database
from repro.datasheets.synthetic import SyntheticPopulationConfig, synthetic_database


@pytest.fixture(autouse=True)
def isolated_runs_dir(monkeypatch, tmp_path):
    """Keep the provenance run ledger out of the real user cache."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture(scope="session")
def paper_model() -> CmosPotentialModel:
    """CMOS model built from the paper's published constants."""
    return CmosPotentialModel.paper()


@pytest.fixture(scope="session")
def fitted_model() -> CmosPotentialModel:
    """CMOS model refitted from the default chip population."""
    return CmosPotentialModel.from_database(reference_database())


@pytest.fixture(scope="session")
def curated_db():
    return curated_database()


@pytest.fixture(scope="session")
def small_synthetic_db():
    """A small (fast) synthetic population for fit tests."""
    return synthetic_database(SyntheticPopulationConfig(chips_per_era=120, seed=7))


@pytest.fixture(scope="session")
def reference_db():
    return reference_database()


@pytest.fixture(scope="session")
def all_kernels():
    """Every Table IV kernel, traced once per session."""
    from repro.workloads import build_all_kernels

    return {kernel.name: kernel for kernel in build_all_kernels()}
