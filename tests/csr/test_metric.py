"""Unit + property tests for the CSR metric and Eq 2 decomposition."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.csr.metric import GainDecomposition, csr, decompose_gain

positive = st.floats(min_value=1e-3, max_value=1e6)


class TestCsr:
    def test_definition(self):
        assert csr(reported_gain=10.0, physical_gain=5.0) == pytest.approx(2.0)

    def test_unity_when_gain_tracks_silicon(self):
        assert csr(7.3, 7.3) == pytest.approx(1.0)

    def test_below_one_when_silicon_outpaces(self):
        assert csr(64.0, 120.0) < 1.0

    def test_rejects_non_positive_reported(self):
        with pytest.raises(ValueError):
            csr(0.0, 1.0)

    def test_rejects_non_positive_physical(self):
        with pytest.raises(ValueError):
            csr(1.0, -1.0)

    @given(positive, positive)
    def test_scale_invariance(self, reported, physical):
        # Scaling both gains by any factor leaves CSR unchanged.
        assert csr(reported * 3.7, physical * 3.7) == pytest.approx(
            csr(reported, physical), rel=1e-9
        )


class TestDecomposition:
    @given(positive, positive)
    def test_eq2_identity(self, reported, physical):
        d = decompose_gain(reported, physical)
        assert d.specialization * d.cmos == pytest.approx(reported, rel=1e-9)

    def test_fields(self):
        d = decompose_gain(510.0, 307.0)
        assert d.cmos == pytest.approx(307.0)
        assert d.specialization == pytest.approx(510.0 / 307.0)

    def test_shares_sum_to_one(self):
        d = decompose_gain(100.0, 10.0)
        assert d.specialization_share + d.cmos_share == pytest.approx(1.0)

    def test_share_values(self):
        # reported = 100, physical = 10 -> specialization also 10:
        # each contributes half the log gain.
        d = decompose_gain(100.0, 10.0)
        assert d.specialization_share == pytest.approx(0.5)

    def test_no_gain_edge_case(self):
        d = GainDecomposition(reported=1.0, specialization=1.0, cmos=1.0)
        assert d.specialization_share == 0.0
        assert d.cmos_share == 1.0

    @pytest.mark.parametrize("wobble", [1e-12, -1e-12, 1e-10, -1e-10])
    def test_share_stable_when_reported_is_nearly_one(self, wobble):
        # Regression: with reported a rounding error away from 1.0 the
        # log(reported) denominator vanishes and the share exploded to
        # ~1e12 before the tolerance guard (e.g. log(2)/log(1 + 1e-12)).
        reported = 1.0 + wobble
        d = GainDecomposition(
            reported=reported, specialization=2.0, cmos=reported / 2.0
        )
        assert d.specialization_share == 0.0
        assert d.cmos_share == 1.0

    def test_share_just_outside_tolerance_uses_log_ratio(self):
        reported = 1.0 + 1e-6  # genuine (tiny) gain: shares are meaningful
        d = decompose_gain(reported, math.sqrt(reported))
        assert d.specialization_share == pytest.approx(0.5, rel=1e-3)

    def test_share_rejects_non_positive_reported(self):
        d = GainDecomposition(reported=-2.0, specialization=1.0, cmos=-2.0)
        with pytest.raises(ValueError):
            d.specialization_share

    def test_share_rejects_non_finite_specialization(self):
        d = GainDecomposition(
            reported=2.0, specialization=float("nan"), cmos=1.0
        )
        with pytest.raises(ValueError):
            d.specialization_share

    def test_bitcoin_headline_numbers(self):
        # Paper Fig 1: 510x performance, 307x transistor performance
        # -> CSR ~1.66.
        d = decompose_gain(510.0, 307.0)
        assert d.specialization == pytest.approx(1.66, rel=0.01)
