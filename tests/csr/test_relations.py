"""Unit + property tests for the Eq 3/4 relation matrix."""


import pytest
from hypothesis import given, strategies as st

from repro.csr.relations import build_relation_matrix, geometric_mean
from repro.errors import DatasetError


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=8))
    def test_bounded_by_min_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


def measurements_direct():
    """Three architectures sharing all five apps."""
    apps = [f"app{i}" for i in range(5)]
    return {
        "X": {a: 10.0 for a in apps},
        "Y": {a: 20.0 for a in apps},
        "Z": {a: 40.0 for a in apps},
    }


class TestDirectRelations:
    def test_pairwise_gains(self):
        matrix = build_relation_matrix(measurements_direct())
        assert matrix.gain("Y", "X") == pytest.approx(2.0)
        assert matrix.gain("Z", "X") == pytest.approx(4.0)

    def test_self_gain_is_one(self):
        matrix = build_relation_matrix(measurements_direct())
        assert matrix.gain("X", "X") == 1.0

    def test_antisymmetry(self):
        matrix = build_relation_matrix(measurements_direct())
        for a in "XYZ":
            for b in "XYZ":
                assert matrix.gain(a, b) * matrix.gain(b, a) == pytest.approx(1.0)

    def test_direct_flags(self):
        matrix = build_relation_matrix(measurements_direct())
        assert matrix.is_direct("X", "Y")

    def test_relative_to_baseline(self):
        matrix = build_relation_matrix(measurements_direct())
        relative = matrix.relative_to("X")
        assert relative == pytest.approx({"X": 1.0, "Y": 2.0, "Z": 4.0})

    def test_eq3_is_geometric_mean_over_shared_apps(self):
        measurements = {
            "A": {"g1": 10.0, "g2": 10.0, "g3": 10.0, "g4": 10.0, "g5": 10.0},
            "B": {"g1": 20.0, "g2": 40.0, "g3": 10.0, "g4": 20.0, "g5": 40.0},
        }
        matrix = build_relation_matrix(measurements)
        expected = geometric_mean([2.0, 4.0, 1.0, 2.0, 4.0])
        assert matrix.gain("B", "A") == pytest.approx(expected)


class TestTransitiveClosure:
    def test_bridged_pair(self):
        # A and C share no apps; both share five with B.
        measurements = {
            "A": {f"x{i}": 10.0 for i in range(5)},
            "B": {**{f"x{i}": 20.0 for i in range(5)},
                  **{f"y{i}": 8.0 for i in range(5)}},
            "C": {f"y{i}": 16.0 for i in range(5)},
        }
        matrix = build_relation_matrix(measurements)
        assert not matrix.is_direct("A", "C")
        # A->B is 1/2, B->C is 1/2 => A->C = 1/4, so C beats A by 4.
        assert matrix.gain("C", "A") == pytest.approx(4.0)

    def test_min_shared_apps_threshold(self):
        measurements = {
            "A": {"g1": 1.0, "g2": 1.0},
            "B": {"g1": 2.0, "g2": 2.0},
        }
        strict = build_relation_matrix(measurements, min_shared_apps=5)
        assert not strict.has("A", "B")
        relaxed = build_relation_matrix(measurements, min_shared_apps=2)
        assert relaxed.gain("B", "A") == pytest.approx(2.0)

    def test_unconnected_lookup_raises(self):
        measurements = {
            "A": {"g1": 1.0},
            "B": {"h1": 2.0},
        }
        matrix = build_relation_matrix(measurements, min_shared_apps=1)
        with pytest.raises(DatasetError):
            matrix.gain("A", "B")

    def test_two_hop_chain(self):
        # A-B direct, B-C direct, C-D direct; A-D needs two closure rounds.
        measurements = {
            "A": {f"ab{i}": 1.0 for i in range(5)},
            "B": {**{f"ab{i}": 2.0 for i in range(5)},
                  **{f"bc{i}": 1.0 for i in range(5)}},
            "C": {**{f"bc{i}": 2.0 for i in range(5)},
                  **{f"cd{i}": 1.0 for i in range(5)}},
            "D": {f"cd{i}": 2.0 for i in range(5)},
        }
        matrix = build_relation_matrix(measurements)
        assert matrix.gain("D", "A") == pytest.approx(8.0)


class TestValidation:
    def test_empty_measurements_rejected(self):
        with pytest.raises(DatasetError):
            build_relation_matrix({})

    def test_empty_architecture_rejected(self):
        with pytest.raises(DatasetError):
            build_relation_matrix({"A": {}})

    def test_non_positive_gain_rejected(self):
        with pytest.raises(DatasetError):
            build_relation_matrix({"A": {"app": -1.0}})


@given(
    st.dictionaries(
        st.sampled_from(["A", "B", "C", "D"]),
        st.dictionaries(
            st.sampled_from([f"app{i}" for i in range(6)]),
            st.floats(min_value=0.5, max_value=50.0),
            min_size=5,
        ),
        min_size=2,
    )
)
def test_property_antisymmetry_everywhere(measurements):
    matrix = build_relation_matrix(measurements)
    for a in matrix.architectures:
        for b in matrix.architectures:
            if matrix.has(a, b):
                assert matrix.gain(a, b) * matrix.gain(b, a) == pytest.approx(
                    1.0, rel=1e-9
                )
