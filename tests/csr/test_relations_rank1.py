"""Exactness property: Eq 3/4 recover rank-1 gain structures perfectly.

If every measurement factors as ``gain[arch][app] = score(arch) * base(app)``
(exactly the structure the paper's Eq 2 implies when CSR and physical gain
are per-architecture), then every recovered relation — direct or bridged
through any chain of intermediaries — must equal the score ratio exactly.
This validates the transitive closure against ground truth, including under
benchmark-window-structured availability like the GPU study's.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.csr.relations import build_relation_matrix

ARCHS = ["A", "B", "C", "D", "E"]
APPS = [f"app{i:02d}" for i in range(19)]


@st.composite
def rank1_measurements(draw):
    """Chain-structured availability: arch i sees apps [3i, 3i+7)."""
    scores = {
        arch: draw(st.floats(min_value=0.5, max_value=20.0))
        for arch in ARCHS
    }
    bases = {
        app: draw(st.floats(min_value=1.0, max_value=200.0)) for app in APPS
    }
    measurements = {}
    for index, arch in enumerate(ARCHS):
        window = APPS[3 * index : 3 * index + 7]
        measurements[arch] = {
            app: scores[arch] * bases[app] for app in window
        }
    return scores, measurements


@given(rank1_measurements())
@settings(max_examples=50, deadline=None)
def test_closure_recovers_score_ratios_exactly(data):
    scores, measurements = data
    matrix = build_relation_matrix(measurements, min_shared_apps=4)
    for x in ARCHS:
        for y in ARCHS:
            assert matrix.has(x, y), (x, y)
            assert matrix.gain(x, y) == pytest.approx(
                scores[x] / scores[y], rel=1e-9
            )


@given(rank1_measurements())
@settings(max_examples=30, deadline=None)
def test_endpoints_share_no_apps_yet_connect(data):
    _scores, measurements = data
    # A sees app0..6, E sees app12..18: disjoint by construction.
    assert not set(measurements["A"]) & set(measurements["E"])
    matrix = build_relation_matrix(measurements, min_shared_apps=4)
    assert not matrix.is_direct("A", "E")
    assert matrix.has("A", "E")


@given(rank1_measurements())
@settings(max_examples=30, deadline=None)
def test_relative_to_baseline_consistent(data):
    scores, measurements = data
    matrix = build_relation_matrix(measurements, min_shared_apps=4)
    relative = matrix.relative_to("A")
    for arch, value in relative.items():
        assert value == pytest.approx(scores[arch] / scores["A"], rel=1e-9)
