"""Unit tests for the CSR series machinery."""

import pytest

from repro.csr.series import compute_csr_series
from repro.datasheets.schema import Category, ChipSpec
from repro.errors import DatasetError


def chip(name, node, area, freq, tdp):
    return ChipSpec(
        name=name, category=Category.ASIC, node_nm=node, area_mm2=area,
        frequency_mhz=freq, tdp_w=tdp,
    )


@pytest.fixture
def chips():
    return [
        (chip("base", 65, 10, 200, 1.0), 100.0),
        (chip("mid", 40, 10, 300, 1.0), 300.0),
        (chip("new", 28, 12, 400, 1.5), 900.0),
    ]


class TestSeries:
    def test_baseline_normalisation(self, paper_model, chips):
        series = compute_csr_series(chips, paper_model)
        assert series.points[0].gain == pytest.approx(1.0)
        assert series.points[0].physical == pytest.approx(1.0)
        assert series.points[0].csr == pytest.approx(1.0)

    def test_gains_normalised_to_baseline(self, paper_model, chips):
        series = compute_csr_series(chips, paper_model)
        assert series.points[1].gain == pytest.approx(3.0)
        assert series.points[2].gain == pytest.approx(9.0)

    def test_named_baseline(self, paper_model, chips):
        series = compute_csr_series(chips, paper_model, baseline="mid")
        assert series.baseline_name == "mid"
        by_name = {p.name: p for p in series}
        assert by_name["mid"].gain == pytest.approx(1.0)
        assert by_name["base"].gain == pytest.approx(1 / 3)

    def test_missing_baseline_raises(self, paper_model, chips):
        with pytest.raises(DatasetError):
            compute_csr_series(chips, paper_model, baseline="nope")

    def test_empty_series_raises(self, paper_model):
        with pytest.raises(DatasetError):
            compute_csr_series([], paper_model)

    def test_non_positive_gain_raises(self, paper_model, chips):
        bad = chips + [(chip("zero", 28, 10, 300, 1.0), 0.0)]
        with pytest.raises(DatasetError):
            compute_csr_series(bad, paper_model)

    def test_csr_is_gain_over_physical(self, paper_model, chips):
        series = compute_csr_series(chips, paper_model)
        for p in series:
            assert p.csr == pytest.approx(p.gain / p.physical)

    def test_uncapped_physical_at_least_capped(self, paper_model, chips):
        capped = compute_csr_series(chips, paper_model, capped=True)
        uncapped = compute_csr_series(chips, paper_model, capped=False)
        # Physical ratios differ, but each chip's raw potential is higher
        # (or equal) uncapped; ratios may move either way, so compare the
        # underlying evaluation instead.
        spec = chips[2][0]
        up = paper_model.evaluate_spec(spec, capped=False).gains.throughput
        down = paper_model.evaluate_spec(spec, capped=True).gains.throughput
        assert up >= down

    def test_helpers(self, paper_model, chips):
        series = compute_csr_series(chips, paper_model)
        assert series.max_gain == pytest.approx(9.0)
        assert series.best_performer().name == "new"
        assert len(series.sorted_by_gain()) == 3
        assert series.sorted_by_gain().points[-1].name == "new"
        pairs = series.gain_physical_pairs()
        assert len(pairs) == 3 and pairs[0] == (1.0, 1.0)
        assert series.final_csr == series.points[-1].csr
