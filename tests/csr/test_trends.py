"""Tests for CSR trend fitting and maturity classification."""


import pytest
from hypothesis import given, strategies as st

from repro.csr.trends import (
    Maturity,
    assess_maturity,
    fit_quadratic_trend,
)
from repro.errors import FitError


class TestQuadraticFit:
    def test_recovers_exact_quadratic(self):
        xs = [0.0, 1.0, 2.0, 3.0, 4.0]
        ys = [2 * x * x - 3 * x + 1 for x in xs]
        fit = fit_quadratic_trend(xs, ys)
        for x in xs:
            assert fit.predict(x) == pytest.approx(2 * x * x - 3 * x + 1)
        assert fit.r2 == pytest.approx(1.0)

    def test_slope_is_derivative(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [x * x for x in xs]
        fit = fit_quadratic_trend(xs, ys)
        assert fit.slope(3.0) == pytest.approx(6.0)
        assert fit.end_slope == pytest.approx(6.0)

    def test_relative_end_slope(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 2.0, 3.0, 4.0]  # slope 1, end value 4
        fit = fit_quadratic_trend(xs, ys)
        assert fit.relative_end_slope == pytest.approx(0.25)

    def test_too_few_points(self):
        with pytest.raises(FitError):
            fit_quadratic_trend([1.0, 2.0], [1.0, 2.0])

    def test_degenerate_x_spread(self):
        with pytest.raises(FitError):
            fit_quadratic_trend([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_nan_filtered(self):
        fit = fit_quadratic_trend(
            [0.0, 1.0, 2.0, float("nan")], [0.0, 1.0, 4.0, 9.0]
        )
        assert fit.predict(2.0) == pytest.approx(4.0)

    @given(
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
    )
    def test_recovers_arbitrary_quadratics(self, a, b, c):
        xs = [0.0, 1.0, 2.0, 3.0, 5.0]
        ys = [a * x * x + b * x + c for x in xs]
        fit = fit_quadratic_trend(xs, ys)
        for x in (0.5, 4.0):
            assert fit.predict(x) == pytest.approx(
                a * x * x + b * x + c, abs=1e-6
            )


def _series(csr_values, years=None):
    """Build a minimal CsrSeries with prescribed CSR values."""
    from repro.csr.series import CsrPoint, CsrSeries

    points = []
    for i, value in enumerate(csr_values):
        points.append(
            CsrPoint(
                name=f"chip{i}",
                node_nm=28.0,
                year=(years[i] if years else 2010 + i),
                gain=value,      # physical = 1 so csr == gain
                physical=1.0,
            )
        )
    return CsrSeries(metric="throughput", baseline_name="chip0", points=tuple(points))


class TestMaturity:
    def test_rising_csr_is_emerging(self):
        series = _series([1.0, 1.5, 2.2, 3.1, 4.2])
        assessment = assess_maturity(series, "toy")
        assert assessment.maturity is Maturity.EMERGING

    def test_flat_csr_is_mature(self):
        series = _series([1.0, 1.02, 0.99, 1.01, 1.0])
        assessment = assess_maturity(series, "toy")
        assert assessment.maturity is Maturity.MATURE

    def test_falling_csr_is_declining(self):
        series = _series([2.0, 1.6, 1.2, 0.9, 0.6])
        assessment = assess_maturity(series, "toy")
        assert assessment.maturity is Maturity.DECLINING

    def test_describe_mentions_domain(self):
        assessment = assess_maturity(_series([1, 1, 1, 1]), "widgets")
        assert "widgets" in assessment.describe()

    def test_paper_domains_classification(self, paper_model):
        # Section IV-E: mature/confined domains plateau or drop; the
        # emerging CNN domain must NOT be declining.
        from repro.studies import fpga_cnn, gpu_graphics, video_decoders

        video = assess_maturity(
            video_decoders.study().performance_series(paper_model), "video"
        )
        assert video.maturity is not Maturity.EMERGING

        gpu = assess_maturity(
            gpu_graphics.study().performance_series(paper_model), "gpu"
        )
        assert gpu.maturity in (Maturity.MATURE, Maturity.DECLINING)

        cnn = assess_maturity(
            fpga_cnn.study("alexnet").performance_series(paper_model), "cnn"
        )
        assert cnn.maturity is not Maturity.DECLINING
