"""Unit tests for the ChipDatabase query layer."""

import numpy as np
import pytest

from repro.cmos.nodes import NODE_ERAS_TDP
from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import Category, ChipSpec
from repro.errors import DatasetError


@pytest.fixture
def db():
    chips = [
        ChipSpec(name="a", category=Category.CPU, node_nm=45, area_mm2=100,
                 transistors=5e8, frequency_mhz=3000, tdp_w=95, year=2009),
        ChipSpec(name="b", category=Category.GPU, node_nm=28, area_mm2=300,
                 transistors=4e9, frequency_mhz=1000, tdp_w=250, year=2013),
        ChipSpec(name="c", category=Category.GPU, node_nm=16, area_mm2=310,
                 frequency_mhz=1600, tdp_w=180, year=2016),
        ChipSpec(name="d", category=Category.CPU, node_nm=14,
                 transistors=5e9, area_mm2=None, frequency_mhz=4000,
                 tdp_w=91, year=2015),
    ]
    return ChipDatabase(chips)


class TestBasics:
    def test_len_and_iter(self, db):
        assert len(db) == 4
        assert [c.name for c in db] == ["a", "b", "c", "d"]

    def test_indexing(self, db):
        assert db[1].name == "b"

    def test_addition_concatenates(self, db):
        combined = db + db
        assert len(combined) == 8

    def test_repr_mentions_counts(self, db):
        assert "4 chips" in repr(db)

    def test_get_by_name(self, db):
        assert db.get("c").node_nm == 16.0

    def test_get_missing_raises(self, db):
        with pytest.raises(DatasetError):
            db.get("zz")


class TestQueries:
    def test_category_filter(self, db):
        assert db.category("gpu").names() == ["b", "c"]
        assert db.category(Category.CPU).names() == ["a", "d"]

    def test_filter_predicate(self, db):
        assert db.filter(lambda c: c.tdp_w > 100).names() == ["b", "c"]

    def test_in_era(self, db):
        era = NODE_ERAS_TDP[2]  # 22nm-12nm
        assert db.in_era(era).names() == ["c", "d"]

    def test_with_area(self, db):
        assert db.with_area().names() == ["a", "b", "c"]

    def test_with_transistors(self, db):
        assert db.with_transistors().names() == ["a", "b", "d"]

    def test_sorted_by(self, db):
        assert db.sorted_by(lambda c: c.tdp_w).names() == ["d", "a", "c", "b"]

    def test_sorted_by_reverse(self, db):
        assert db.sorted_by(lambda c: c.tdp_w, reverse=True)[0].name == "b"


class TestArrayExtraction:
    def test_column_with_none_becomes_nan(self, db):
        areas = db.column("area_mm2")
        assert np.isnan(areas[3])
        assert areas[0] == 100.0

    def test_density_points_require_both_fields(self, db):
        density, transistors = db.density_points()
        assert len(density) == 2  # a and b only
        assert transistors[0] == pytest.approx(5e8)

    def test_density_points_empty_raises(self):
        lone = ChipDatabase([
            ChipSpec(name="x", category=Category.CPU, node_nm=45,
                     transistors=1e9, frequency_mhz=1000, tdp_w=50),
        ])
        with pytest.raises(DatasetError):
            lone.density_points()

    def test_tdp_points_units(self, db):
        tdp, product = db.tdp_points()
        # First chip: 5e8 transistors at 3GHz -> 0.5 * 3.0 = 1.5.
        assert tdp[0] == 95.0
        assert product[0] == pytest.approx(1.5)

    def test_tdp_points_empty_raises(self):
        lone = ChipDatabase([
            ChipSpec(name="x", category=Category.CPU, node_nm=45,
                     area_mm2=100, frequency_mhz=1000, tdp_w=50),
        ])
        with pytest.raises(DatasetError):
            lone.tdp_points()

    def test_summary(self, db):
        summary = db.summary()
        assert summary["count"] == 4
        assert summary["categories"]["gpu"] == 2
        assert summary["node_min_nm"] == 14.0
        assert summary["with_area"] == 3
