"""Tests for CSV/JSON datasheet import/export."""

import json

import pytest

from repro.datasheets.io import from_csv, from_json, to_csv, to_json
from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import Category, ChipSpec
from repro.errors import InvalidChipSpecError


@pytest.fixture
def db():
    return ChipDatabase([
        ChipSpec(name="alpha", category=Category.CPU, node_nm=28,
                 area_mm2=150.0, transistors=1.5e9, frequency_mhz=3200,
                 tdp_w=84, year=2013, vendor="ACME"),
        ChipSpec(name="beta", category=Category.GPU, node_nm=16,
                 area_mm2=300.0, transistors=None, frequency_mhz=1500,
                 tdp_w=180, year=None, vendor=None),
    ])


class TestCsvRoundtrip:
    def test_roundtrip_preserves_specs(self, db, tmp_path):
        path = tmp_path / "chips.csv"
        to_csv(db, path)
        loaded = from_csv(path)
        assert len(loaded) == 2
        alpha = loaded.get("alpha")
        assert alpha.category is Category.CPU
        assert alpha.transistors == pytest.approx(1.5e9)
        assert alpha.year == 2013
        beta = loaded.get("beta")
        assert beta.transistors is None
        assert beta.year is None
        assert beta.vendor is None

    def test_hand_authored_csv(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text(
            "name,category,node_nm,area_mm2,transistors,frequency_mhz,"
            "tdp_w,year,vendor,source\n"
            "mychip,asic,7,50,,800,15,2020,,\n"
        )
        loaded = from_csv(path)
        assert loaded.get("mychip").node_nm == 7.0
        assert loaded.get("mychip").source == "imported"

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "name,category,node_nm,area_mm2,transistors,frequency_mhz,"
            "tdp_w,year,vendor,source\n"
            "broken,asic,not-a-node,50,,800,15,,,\n"
        )
        with pytest.raises(InvalidChipSpecError):
            from_csv(path)


class TestJsonRoundtrip:
    def test_roundtrip(self, db, tmp_path):
        path = tmp_path / "chips.json"
        to_json(db, path)
        loaded = from_json(path)
        assert loaded.names() == db.names()
        assert loaded.get("beta").frequency_mhz == 1500.0

    def test_json_is_valid_and_flat(self, db, tmp_path):
        path = tmp_path / "chips.json"
        to_json(db, path)
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert payload[0]["name"] == "alpha"

    def test_non_list_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(InvalidChipSpecError):
            from_json(path)

    def test_curated_database_roundtrip(self, curated_db, tmp_path):
        path = tmp_path / "curated.json"
        to_json(curated_db, path)
        loaded = from_json(path)
        assert len(loaded) == len(curated_db)
        original = curated_db.get("Tesla V100")
        restored = loaded.get("Tesla V100")
        assert restored.transistors == pytest.approx(original.transistors)
