"""Tests for the curated seed and the synthetic population generator."""

import pytest

from repro.datasheets.schema import Category
from repro.datasheets.synthetic import (
    SyntheticPopulationConfig,
    synthetic_database,
)


class TestCurated:
    def test_population_size(self, curated_db):
        assert len(curated_db) >= 80

    def test_both_categories_present(self, curated_db):
        assert len(curated_db.category(Category.CPU)) >= 40
        assert len(curated_db.category(Category.GPU)) >= 40

    def test_all_have_area_and_transistors(self, curated_db):
        assert len(curated_db.with_area()) == len(curated_db)
        assert len(curated_db.with_transistors()) == len(curated_db)

    def test_known_chip_sanity(self, curated_db):
        v100 = curated_db.get("Tesla V100")
        assert v100.node_nm == 12.0
        assert v100.transistors == pytest.approx(21.1e9)

    def test_names_unique(self, curated_db):
        names = curated_db.names()
        assert len(names) == len(set(names))

    def test_years_span_two_decades(self, curated_db):
        years = [c.year for c in curated_db]
        assert min(years) <= 2002 and max(years) >= 2017


class TestSyntheticConfig:
    def test_rejects_bad_chip_count(self):
        with pytest.raises(ValueError):
            SyntheticPopulationConfig(chips_per_era=0)

    def test_rejects_bad_gpu_fraction(self):
        with pytest.raises(ValueError):
            SyntheticPopulationConfig(gpu_fraction=1.5)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            SyntheticPopulationConfig(tc_noise_sigma=-0.1)


class TestSyntheticGeneration:
    def test_deterministic(self):
        config = SyntheticPopulationConfig(chips_per_era=30, seed=11)
        a = synthetic_database(config)
        b = synthetic_database(config)
        assert [c.name for c in a] == [c.name for c in b]
        assert [c.tdp_w for c in a] == [c.tdp_w for c in b]

    def test_seed_changes_population(self):
        a = synthetic_database(SyntheticPopulationConfig(chips_per_era=30, seed=1))
        b = synthetic_database(SyntheticPopulationConfig(chips_per_era=30, seed=2))
        assert [c.tdp_w for c in a] != [c.tdp_w for c in b]

    def test_population_size(self, small_synthetic_db):
        assert len(small_synthetic_db) == 5 * 120

    def test_all_records_valid(self, small_synthetic_db):
        for chip in small_synthetic_db:
            assert chip.area_mm2 > 0
            assert 3.0 <= chip.tdp_w <= 900.0
            assert chip.transistors > 0
            assert 5.0 <= chip.node_nm <= 180.0

    def test_areas_within_reticle_limit(self, small_synthetic_db):
        for chip in small_synthetic_db:
            assert chip.area_mm2 <= 880.0 * 1.0001

    def test_gpu_fraction_roughly_respected(self, small_synthetic_db):
        gpus = len(small_synthetic_db.category(Category.GPU))
        fraction = gpus / len(small_synthetic_db)
        assert 0.3 < fraction < 0.5

    def test_years_track_nodes(self, small_synthetic_db):
        old = small_synthetic_db.filter(lambda c: c.node_nm >= 130)
        new = small_synthetic_db.filter(lambda c: c.node_nm <= 10)
        assert max(c.year for c in old) < min(c.year for c in new) + 10
        assert min(c.year for c in new) > 2015


class TestFitRobustness:
    def test_fits_stable_across_seeds(self):
        """Different random populations recover the same physical laws."""
        from repro.cmos.transistors import fit_transistor_count

        exponents = []
        for seed in (1, 42, 20190216):
            db = synthetic_database(
                SyntheticPopulationConfig(chips_per_era=150, seed=seed)
            )
            exponents.append(fit_transistor_count(db).exponent)
        spread = max(exponents) / min(exponents)
        assert spread < 1.05

    def test_tdp_fits_stable_across_seeds(self):
        from repro.cmos.tdp import fit_tdp_model

        coefficients = []
        for seed in (7, 77):
            db = synthetic_database(
                SyntheticPopulationConfig(chips_per_era=150, seed=seed)
            )
            model = fit_tdp_model(db)
            coefficients.append(model.era_fit(16).exponent)
        assert coefficients[0] == pytest.approx(coefficients[1], rel=0.2)


class TestReference:
    def test_reference_is_cached(self):
        from repro.datasheets.reference import reference_database

        assert reference_database() is reference_database()

    def test_reference_contains_curated_and_synthetic(self, reference_db):
        sources = {c.source for c in reference_db}
        assert sources == {"curated", "synthetic"}
