"""Unit tests for the ChipSpec datasheet record."""

import pytest

from repro.cmos.nodes import density_factor
from repro.datasheets.schema import Category, ChipSpec
from repro.errors import InvalidChipSpecError


def make(**overrides):
    base = dict(
        name="chip", category=Category.CPU, node_nm=28, area_mm2=100,
        frequency_mhz=2000, tdp_w=65,
    )
    base.update(overrides)
    return ChipSpec(**base)


class TestValidation:
    def test_valid_spec(self):
        spec = make()
        assert spec.node_nm == 28.0

    def test_category_coerced_from_string(self):
        spec = make(category="gpu")
        assert spec.category is Category.GPU

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            make(category="tpu")

    def test_node_string_accepted(self):
        assert make(node_nm="16nm").node_nm == 16.0

    def test_invalid_node_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(node_nm=0.028)  # unit mistake: microns instead of nm

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(name="   ")

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(frequency_mhz=0)

    def test_non_positive_tdp_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(tdp_w=-10)

    def test_area_or_transistors_required(self):
        with pytest.raises(InvalidChipSpecError):
            make(area_mm2=None, transistors=None)

    def test_transistors_only_is_fine(self):
        spec = make(area_mm2=None, transistors=1e9)
        assert spec.density is None

    def test_negative_area_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(area_mm2=-5)

    def test_negative_transistors_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(transistors=-1)

    def test_implausible_year_rejected(self):
        with pytest.raises(InvalidChipSpecError):
            make(year=1815)


class TestDerived:
    def test_density_matches_helper(self):
        spec = make()
        assert spec.density == pytest.approx(density_factor(100, 28))

    def test_frequency_ghz(self):
        assert make(frequency_mhz=2500).frequency_ghz == pytest.approx(2.5)

    def test_with_source_preserves_fields(self):
        spec = make().with_source("scraped")
        assert spec.source == "scraped"
        assert spec.name == "chip"

    def test_source_excluded_from_equality(self):
        assert make() == make().with_source("other")
