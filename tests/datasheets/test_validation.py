"""Tests for population validation."""


from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import Category, ChipSpec
from repro.datasheets.validation import validate_population


def chip(name, node=28, area=200.0, trans=None, tdp=100.0, freq=1500.0):
    return ChipSpec(
        name=name, category=Category.GPU, node_nm=node, area_mm2=area,
        transistors=trans, frequency_mhz=freq, tdp_w=tdp,
    )


class TestValidatePopulation:
    def test_reference_population_is_fit_ready(self, reference_db):
        report = validate_population(reference_db)
        assert report.fit_ready
        # The calibrated population has essentially no gross outliers.
        assert len(report.density_outliers) < len(reference_db) * 0.02

    def test_curated_population_reports_thin_eras(self, curated_db):
        report = validate_population(curated_db)
        # Almost no 10nm-5nm real chips in the curated seed.
        assert "10nm-5nm" in report.thin_eras
        assert not report.fit_ready

    def test_density_outlier_detected(self):
        from repro.cmos.transistors import PAPER_DENSITY_FIT

        plausible = PAPER_DENSITY_FIT.transistors_for_chip(200.0, 28)
        db = ChipDatabase([
            chip("normal", trans=plausible),
            chip("bloated", trans=plausible * 50),
            chip("anemic", trans=plausible / 50),
        ])
        report = validate_population(db)
        assert set(report.density_outliers) == {"bloated", "anemic"}

    def test_power_density_bounds(self):
        db = ChipDatabase([
            chip("hot", area=50.0, tdp=500.0),      # 10 W/mm^2
            chip("cold", area=800.0, tdp=0.05),     # 6e-5 W/mm^2
            chip("fine", area=300.0, tdp=150.0),
        ])
        report = validate_population(db)
        assert set(report.implausible_power_density) == {"hot", "cold"}

    def test_small_population_warns(self):
        db = ChipDatabase([chip(f"c{i}", trans=1e9) for i in range(5)])
        report = validate_population(db)
        assert any("too small" in w for w in report.warnings)
        assert not report.fit_ready

    def test_missing_transistor_counts_warn(self):
        db = ChipDatabase(
            [chip(f"c{i}", trans=None) for i in range(40)]
        )
        report = validate_population(db)
        assert any("disclose" in w for w in report.warnings)

    def test_describe_output(self, curated_db):
        text = validate_population(curated_db).describe()
        assert "chips" in text
        assert "thin eras" in text
