"""Unit tests for DFG analysis: depth, stages, working sets, paths."""

import pytest

from repro.dfg.analysis import (
    analyze,
    count_paths,
    critical_path,
    depth,
    stage_levels,
    stage_working_sets,
    topological_order,
)
from repro.dfg.graph import Dfg


def fig11():
    """The paper's Fig 11 example: 3 inputs, 2 compute stages, 2 outputs."""
    g = Dfg("fig11")
    d1, d2, d3 = g.add_input("d1"), g.add_input("d2"), g.add_input("d3")
    s1 = g.add_compute("add", [d1, d2])
    s2 = g.add_compute("div", [d2, d3])
    t1 = g.add_compute("sub", [s1, s2])
    t2 = g.add_compute("add", [s2, d3])
    o1 = g.add_output(t1)
    o2 = g.add_output(t2)
    return g


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        g = fig11()
        order = topological_order(g)
        position = {nid: i for i, nid in enumerate(order)}
        for src, dst in g.edges():
            assert position[src] < position[dst]

    def test_covers_all_nodes(self):
        g = fig11()
        assert len(topological_order(g)) == len(g)


class TestStages:
    def test_inputs_are_stage_one(self):
        g = fig11()
        levels = stage_levels(g)
        for nid in g.inputs():
            assert levels[nid] == 1

    def test_level_is_one_past_deepest_pred(self):
        g = fig11()
        levels = stage_levels(g)
        for nid in g.node_ids():
            preds = g.predecessors(nid)
            if preds:
                assert levels[nid] == 1 + max(levels[p] for p in preds)

    def test_working_sets_partition_vertices(self):
        g = fig11()
        sets = stage_working_sets(g)
        all_nodes = [nid for members in sets.values() for nid in members]
        assert sorted(all_nodes) == sorted(g.node_ids())

    def test_fig11_depth_is_four(self):
        # input -> stage1 compute -> stage2 compute -> output = 4 vertices.
        assert depth(fig11()) == 4


class TestPaths:
    def test_fig11_path_count(self):
        # d1->s1->t1->o1; d2->s1->t1; d2->s2->{t1,t2}; d3->s2->{t1,t2}; d3->t2.
        assert count_paths(fig11()) == 7

    def test_chain_has_one_path(self):
        g = Dfg("chain")
        a = g.add_input()
        b = g.add_compute("add", [a])
        c = g.add_compute("add", [b])
        g.add_output(c)
        assert count_paths(g) == 1

    def test_critical_path_is_longest(self):
        g = fig11()
        path = critical_path(g)
        assert len(path) == depth(g)

    def test_critical_path_is_connected(self):
        g = fig11()
        path = critical_path(g)
        for src, dst in zip(path, path[1:]):
            assert dst in g.successors(src)

    def test_critical_path_spans_input_to_output(self):
        g = fig11()
        path = critical_path(g)
        assert path[0] in g.inputs()
        assert path[-1] in g.outputs()


class TestAnalyze:
    def test_fig11_stats(self):
        stats = analyze(fig11())
        assert stats.n_vertices == 9
        assert stats.n_edges == 10
        assert stats.n_inputs == 3
        assert stats.n_outputs == 2
        assert stats.n_compute == 4
        assert stats.depth == 4
        assert stats.max_working_set == 3
        assert stats.path_count == 7

    def test_stage_sizes_sum_to_vertices(self):
        stats = analyze(fig11())
        assert sum(stats.stage_sizes) == stats.n_vertices

    def test_parallelism(self):
        stats = analyze(fig11())
        assert stats.parallelism == pytest.approx(9 / 4)

    def test_describe_mentions_name(self):
        assert "fig11" in analyze(fig11()).describe()
