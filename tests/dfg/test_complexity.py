"""Unit tests for the Table II concept-limit formulas."""

import math

import pytest

from repro.dfg.analysis import DfgStats, analyze
from repro.dfg.complexity import (
    Component,
    Concept,
    complexity_table,
    concept_limit,
    speedup_bound,
)
from repro.dfg.graph import Dfg


@pytest.fixture
def stats():
    return DfgStats(
        name="synthetic", n_vertices=100, n_edges=180, n_inputs=16,
        n_outputs=4, n_compute=80, depth=10, max_working_set=32,
        stage_sizes=(16, 32, 20, 12, 8, 4, 3, 2, 2, 1), path_count=1000,
    )


class TestTable2Formulas:
    def test_memory_simplification(self, stats):
        limit = concept_limit(stats, Component.MEMORY, Concept.SIMPLIFICATION)
        assert limit.time == pytest.approx(100 * math.log2(32))
        assert limit.space == 32

    def test_memory_heterogeneity(self, stats):
        limit = concept_limit(stats, Component.MEMORY, Concept.HETEROGENEITY)
        assert limit.time == 10
        assert limit.space == 180

    def test_memory_partitioning(self, stats):
        limit = concept_limit(stats, Component.MEMORY, Concept.PARTITIONING)
        assert limit.time == pytest.approx(10 * math.log2(32))
        assert limit.space == 32

    def test_communication_simplification(self, stats):
        limit = concept_limit(stats, Component.COMMUNICATION, Concept.SIMPLIFICATION)
        assert limit.time == 180
        assert limit.space == 100

    def test_communication_heterogeneity(self, stats):
        limit = concept_limit(stats, Component.COMMUNICATION, Concept.HETEROGENEITY)
        assert limit.time == 10
        assert limit.space == 180

    def test_communication_partitioning(self, stats):
        limit = concept_limit(stats, Component.COMMUNICATION, Concept.PARTITIONING)
        assert limit.time == 10
        assert limit.space == 32

    def test_computation_simplification(self, stats):
        limit = concept_limit(stats, Component.COMPUTATION, Concept.SIMPLIFICATION)
        assert limit.time == 180
        assert limit.space == 1

    def test_computation_heterogeneity_lookup_table(self, stats):
        limit = concept_limit(stats, Component.COMPUTATION, Concept.HETEROGENEITY)
        assert limit.time == 16
        assert limit.space == pytest.approx(2**16 * 4)

    def test_computation_partitioning(self, stats):
        limit = concept_limit(stats, Component.COMPUTATION, Concept.PARTITIONING)
        assert limit.time == 10
        assert limit.space == 32

    def test_lookup_table_overflow_clamps_to_inf(self):
        huge = DfgStats(
            name="huge", n_vertices=5000, n_edges=9000, n_inputs=2000,
            n_outputs=10, n_compute=2990, depth=50, max_working_set=500,
            stage_sizes=(500,), path_count=1,
        )
        limit = concept_limit(huge, Component.COMPUTATION, Concept.HETEROGENEITY)
        assert limit.space == math.inf

    def test_formulas_are_documented(self, stats):
        limit = concept_limit(stats, Component.MEMORY, Concept.SIMPLIFICATION)
        assert "log" in limit.time_formula
        assert "WS" in limit.space_formula


class TestTableAndBounds:
    def test_full_table_has_nine_entries(self, stats):
        table = complexity_table(stats)
        assert len(table) == 9

    def test_heterogeneity_and_partitioning_never_slower_than_simplification(
        self, stats
    ):
        for component in Component:
            simple = concept_limit(stats, component, Concept.SIMPLIFICATION).time
            for concept in (Concept.PARTITIONING, Concept.HETEROGENEITY):
                assert concept_limit(stats, component, concept).time <= simple

    def test_speedup_bound_at_least_one(self, stats):
        for component in Component:
            assert speedup_bound(stats, component) >= 1.0

    def test_speedup_bound_memory(self, stats):
        expected = (100 * math.log2(32)) / 10
        assert speedup_bound(stats, Component.MEMORY) == pytest.approx(expected)

    def test_on_real_kernel(self, all_kernels):
        stats = analyze(all_kernels["gmm"].dfg)
        table = complexity_table(stats)
        for limit in table.values():
            assert limit.time >= 1.0
            assert limit.space >= 1.0

    def test_degenerate_small_graph(self):
        g = Dfg("tiny")
        a = g.add_input()
        b = g.add_compute("add", [a])
        g.add_output(b)
        table = complexity_table(analyze(g))
        for limit in table.values():
            assert limit.time > 0 and limit.space > 0
