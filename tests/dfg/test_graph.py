"""Unit tests for the DFG graph type."""

import pytest

from repro.dfg.graph import Dfg, NodeKind
from repro.errors import GraphStructureError


def diamond():
    """in -> (left, right) -> join -> out"""
    g = Dfg("diamond")
    a = g.add_input("a")
    left = g.add_compute("add", [a])
    right = g.add_compute("mul", [a])
    join = g.add_compute("add", [left, right])
    out = g.add_output(join, "out")
    return g, (a, left, right, join, out)


class TestConstruction:
    def test_node_kinds(self):
        g, (a, left, right, join, out) = diamond()
        assert g.node(a).kind is NodeKind.INPUT
        assert g.node(left).kind is NodeKind.COMPUTE
        assert g.node(out).kind is NodeKind.OUTPUT

    def test_counts(self):
        g, _ = diamond()
        assert len(g) == 5
        assert g.num_edges == 5

    def test_degree_sets(self):
        g, (a, left, right, join, out) = diamond()
        assert g.inputs() == [a]
        assert g.outputs() == [out]
        assert set(g.compute_nodes()) == {left, right, join}

    def test_adjacency(self):
        g, (a, left, right, join, out) = diamond()
        assert set(g.successors(a)) == {left, right}
        assert set(g.predecessors(join)) == {left, right}

    def test_edges_iterator(self):
        g, (a, left, *_rest) = diamond()
        assert (a, left) in set(g.edges())

    def test_duplicate_edge_is_idempotent(self):
        g = Dfg("dup")
        a = g.add_input()
        b = g.add_compute("add", [a])
        g.add_edge(a, b)
        assert g.num_edges == 1

    def test_compute_without_operands_rejected(self):
        g = Dfg("bad")
        with pytest.raises(GraphStructureError):
            g.add_compute("add", [])

    def test_compute_requires_op(self):
        from repro.dfg.graph import DfgNode

        with pytest.raises(GraphStructureError):
            DfgNode(0, NodeKind.COMPUTE, op=None)

    def test_input_cannot_carry_op(self):
        from repro.dfg.graph import DfgNode

        with pytest.raises(GraphStructureError):
            DfgNode(0, NodeKind.INPUT, op="add")

    def test_self_loop_rejected(self):
        g = Dfg("loop")
        a = g.add_input()
        b = g.add_compute("add", [a])
        with pytest.raises(GraphStructureError):
            g.add_edge(b, b)

    def test_edge_from_output_rejected(self):
        g, (_a, left, _r, _j, out) = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge(out, left)

    def test_edge_into_input_rejected(self):
        g, (a, left, *_rest) = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge(left, a)

    def test_unknown_endpoint_rejected(self):
        g, _ = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 999)

    def test_unknown_node_lookup_rejected(self):
        g, _ = diamond()
        with pytest.raises(GraphStructureError):
            g.node(999)


class TestValidation:
    def test_valid_graph_passes_and_chains(self):
        g, _ = diamond()
        assert g.validate() is g

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphStructureError):
            Dfg("empty").validate()

    def test_dead_compute_rejected(self):
        g = Dfg("dead")
        a = g.add_input()
        g.add_compute("add", [a])  # never consumed
        with pytest.raises(GraphStructureError, match="dead"):
            g.validate()

    def test_cycle_detected(self):
        g = Dfg("cyclic")
        a = g.add_input()
        b = g.add_compute("add", [a])
        c = g.add_compute("add", [b])
        g.add_output(c)
        g.add_edge(c, b)  # back edge
        with pytest.raises(GraphStructureError, match="cycle"):
            g.validate()

    def test_repr(self):
        g, _ = diamond()
        assert "diamond" in repr(g) and "5 nodes" in repr(g)


class TestCopySubgraph:
    def test_copy_is_independent(self):
        g, (a, *_rest) = diamond()
        clone = g.copy()
        new = clone.add_compute("add", [a])
        clone.add_output(new)
        assert len(clone) == len(g) + 2

    def test_subgraph_restricts_edges(self):
        g, (a, left, right, join, out) = diamond()
        sub = g.subgraph({a, left})
        assert len(sub) == 2
        assert sub.num_edges == 1

    def test_subgraph_unknown_node_rejected(self):
        g, _ = diamond()
        with pytest.raises(GraphStructureError):
            g.subgraph({999})
