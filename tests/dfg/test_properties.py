"""Hypothesis property tests over random DAGs: transform invariants."""

from hypothesis import given, settings, strategies as st

from repro.dfg.analysis import analyze, depth, topological_order
from repro.dfg.graph import Dfg, NodeKind
from repro.dfg.transforms import (
    dead_code_eliminate,
    eliminate_common_subexpressions,
    fuse_nodes,
    is_convex,
)

OPS = ["add", "mul", "sub", "min", "max"]


@st.composite
def random_dag(draw):
    """A random valid DFG: layered construction guarantees acyclicity."""
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    n_compute = draw(st.integers(min_value=1, max_value=12))
    g = Dfg("random")
    available = [g.add_input(f"in{i}") for i in range(n_inputs)]
    for i in range(n_compute):
        n_operands = draw(st.integers(min_value=1, max_value=min(3, len(available))))
        operands = draw(
            st.lists(
                st.sampled_from(available),
                min_size=n_operands,
                max_size=n_operands,
                unique=True,
            )
        )
        op = draw(st.sampled_from(OPS))
        available.append(g.add_compute(op, operands))
    # Every sink (no successors) becomes an output so validation passes.
    for nid in list(g.node_ids()):
        node = g.node(nid)
        if node.kind is NodeKind.COMPUTE and not g.successors(nid):
            g.add_output(nid)
    return dead_code_eliminate(g)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_random_dag_is_valid(g):
    g.validate()


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_analysis_invariants(g):
    stats = analyze(g)
    assert stats.n_vertices == stats.n_inputs + stats.n_outputs + stats.n_compute
    assert 1 <= stats.depth <= stats.n_vertices
    assert 1 <= stats.max_working_set <= stats.n_vertices
    assert sum(stats.stage_sizes) == stats.n_vertices
    assert stats.path_count >= max(stats.n_inputs, stats.n_outputs) > 0


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_cse_preserves_acyclicity_and_io(g):
    merged = eliminate_common_subexpressions(g)
    merged.validate()  # checks acyclicity
    assert len(merged.outputs()) == len(g.outputs())
    assert len(merged) <= len(g)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_cse_is_idempotent(g):
    once = eliminate_common_subexpressions(g)
    twice = eliminate_common_subexpressions(once)
    assert len(once) == len(twice)
    assert once.num_edges == twice.num_edges


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_dce_is_noop_on_cleaned_graph(g):
    cleaned = dead_code_eliminate(g)
    assert len(cleaned) == len(g)


@given(random_dag(), st.data())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_invariants(g, data):
    computes = [
        nid for nid in g.node_ids()
        if g.node(nid).kind is NodeKind.COMPUTE
    ]
    if not computes:
        return
    # Pick a convex candidate set: a node plus optionally one successor.
    seed = data.draw(st.sampled_from(computes))
    members = {seed}
    succs = [
        s for s in g.successors(seed)
        if g.node(s).kind is NodeKind.COMPUTE and len(g.successors(seed)) == 1
    ]
    if succs and data.draw(st.booleans()):
        members.add(succs[0])
    if not is_convex(g, members):
        return
    fused = fuse_nodes(g, sorted(members))
    fused.validate()
    assert len(fused) == len(g) - (len(members) - 1)
    assert len(fused.outputs()) == len(g.outputs())
    assert depth(fused) <= depth(g)


@given(random_dag())
@settings(max_examples=40, deadline=None)
def test_topological_order_is_stable_under_copy(g):
    clone = g.copy()
    assert topological_order(g) == topological_order(clone)
