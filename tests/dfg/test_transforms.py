"""Unit tests for the DFG specialization-concept transforms."""

import pytest

from repro.dfg.analysis import depth
from repro.dfg.graph import Dfg, NodeKind
from repro.dfg.transforms import (
    dead_code_eliminate,
    eliminate_common_subexpressions,
    fuse_nodes,
    is_convex,
    stage_partition,
)
from repro.errors import GraphStructureError


def chain_graph():
    g = Dfg("chain")
    a = g.add_input("a")
    b = g.add_compute("add", [a])
    c = g.add_compute("add", [b])
    d = g.add_compute("mul", [c])
    g.add_output(d)
    return g, (a, b, c, d)


class TestConvexity:
    def test_chain_prefix_is_convex(self):
        g, (_a, b, c, _d) = chain_graph()
        assert is_convex(g, {b, c})

    def test_gap_is_not_convex(self):
        g, (_a, b, _c, d) = chain_graph()
        # b -> c -> d leaves {b, d} and re-enters through c.
        assert not is_convex(g, {b, d})

    def test_parallel_nodes_are_convex(self):
        g = Dfg("par")
        a = g.add_input()
        x = g.add_compute("add", [a])
        y = g.add_compute("mul", [a])
        z = g.add_compute("add", [x, y])
        g.add_output(z)
        assert is_convex(g, {x, y})


class TestFusion:
    def test_fuse_chain_reduces_vertices(self):
        g, (_a, b, c, _d) = chain_graph()
        fused = fuse_nodes(g, [b, c])
        assert len(fused) == len(g) - 1
        fused.validate()

    def test_fuse_preserves_io_counts(self):
        g, (_a, b, c, _d) = chain_graph()
        fused = fuse_nodes(g, [b, c])
        assert len(fused.inputs()) == len(g.inputs())
        assert len(fused.outputs()) == len(g.outputs())

    def test_fuse_reduces_depth(self):
        g, (_a, b, c, _d) = chain_graph()
        fused = fuse_nodes(g, [b, c])
        assert depth(fused) == depth(g) - 1

    def test_fused_node_carries_op(self):
        g, (_a, b, c, _d) = chain_graph()
        fused = fuse_nodes(g, [b, c], op="madd")
        ops = {node.op for node in fused.nodes() if node.kind is NodeKind.COMPUTE}
        assert "madd" in ops

    def test_non_convex_rejected(self):
        g, (_a, b, _c, d) = chain_graph()
        with pytest.raises(GraphStructureError, match="convex"):
            fuse_nodes(g, [b, d])

    def test_empty_set_rejected(self):
        g, _ = chain_graph()
        with pytest.raises(GraphStructureError):
            fuse_nodes(g, [])

    def test_non_compute_member_rejected(self):
        g, (a, b, _c, _d) = chain_graph()
        with pytest.raises(GraphStructureError):
            fuse_nodes(g, [a, b])

    def test_fusing_with_late_external_operand(self):
        # Regression: an external operand of a *later* chain member may be
        # topologically after the first member; the contracted order must
        # still place it before the fused node.
        g = Dfg("late")
        a = g.add_input("a")
        b = g.add_input("b")
        first = g.add_compute("add", [a])
        late = g.add_compute("mul", [b])  # external operand of `second`
        second = g.add_compute("add", [first, late])
        g.add_output(second)
        fused = fuse_nodes(g, [first, second])
        fused.validate()
        assert len(fused) == len(g) - 1

    def test_fuse_all_inputsless_set_rejected(self):
        g = Dfg("noops")
        a = g.add_input()
        only = g.add_compute("add", [a])
        g.add_output(only)
        fused = fuse_nodes(g, [only])  # single node, has external pred: fine
        fused.validate()


class TestDeadCodeElimination:
    def test_removes_dead_compute(self):
        g, (a, _b, _c, _d) = chain_graph()
        g.add_compute("mul", [a])  # dead
        cleaned = dead_code_eliminate(g)
        cleaned.validate()
        assert len(cleaned) == 5

    def test_removes_unused_inputs(self):
        g, _ = chain_graph()
        g.add_input("unused")
        cleaned = dead_code_eliminate(g)
        assert len(cleaned.inputs()) == 1

    def test_noop_on_clean_graph(self):
        g, _ = chain_graph()
        cleaned = dead_code_eliminate(g)
        assert len(cleaned) == len(g)
        assert cleaned.num_edges == g.num_edges


class TestCse:
    def test_merges_identical_ops(self):
        g = Dfg("cse")
        a = g.add_input()
        b = g.add_input()
        x = g.add_compute("add", [a, b])
        y = g.add_compute("add", [a, b])  # duplicate
        z = g.add_compute("mul", [x, y])
        g.add_output(z)
        merged = eliminate_common_subexpressions(g)
        merged.validate()
        assert len(merged) == len(g) - 1

    def test_collapses_duplicate_chains(self):
        g = Dfg("chain-cse")
        a = g.add_input()
        x1 = g.add_compute("add", [a])
        x2 = g.add_compute("add", [a])
        y1 = g.add_compute("mul", [x1])
        y2 = g.add_compute("mul", [x2])
        z = g.add_compute("add", [y1, y2])
        g.add_output(z)
        merged = eliminate_common_subexpressions(g)
        # add+add merge, then mul+mul merge; the final add collapses to a
        # single-operand op over the shared mul.
        assert len(merged) == 5

    def test_distinct_ops_not_merged(self):
        g = Dfg("distinct")
        a = g.add_input()
        b = g.add_input()
        x = g.add_compute("add", [a, b])
        y = g.add_compute("sub", [a, b])
        z = g.add_compute("mul", [x, y])
        g.add_output(z)
        merged = eliminate_common_subexpressions(g)
        assert len(merged) == len(g)

    def test_preserves_outputs(self):
        g = Dfg("out")
        a = g.add_input()
        x = g.add_compute("add", [a])
        y = g.add_compute("add", [a])
        g.add_output(x)
        g.add_output(y)
        merged = eliminate_common_subexpressions(g)
        assert len(merged.outputs()) == 2


class TestStagePartition:
    def test_wide_enough_lanes_give_one_chunk_per_stage(self):
        g, _ = chain_graph()
        chunks = stage_partition(g, max_lanes=8)
        assert all(len(stage) == 1 for stage in chunks)

    def test_single_lane_serialises_stage(self):
        g = Dfg("wide")
        inputs = [g.add_input() for _ in range(4)]
        mids = [g.add_compute("add", [i]) for i in inputs]
        total = g.add_compute("add", mids)
        g.add_output(total)
        chunks = stage_partition(g, max_lanes=1)
        # Stage 1 holds 4 inputs -> 4 serial chunks.
        assert len(chunks[0]) == 4

    def test_total_members_preserved(self):
        g, _ = chain_graph()
        chunks = stage_partition(g, max_lanes=2)
        flat = [nid for stage in chunks for lane in stage for nid in lane]
        assert sorted(flat) == sorted(g.node_ids())

    def test_bad_factor_rejected(self):
        g, _ = chain_graph()
        with pytest.raises(GraphStructureError):
            stage_partition(g, 0)
