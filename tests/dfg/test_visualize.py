"""Tests for DOT export."""

import pytest

from repro.dfg.graph import Dfg
from repro.dfg.visualize import to_dot


@pytest.fixture
def small_graph():
    g = Dfg("viz")
    a = g.add_input("a")
    b = g.add_input("b")
    total = g.add_compute("add", [a, b], label="sum")
    g.add_output(total, "out")
    return g


class TestToDot:
    def test_structure(self, small_graph):
        dot = to_dot(small_graph)
        assert dot.startswith('digraph "viz"')
        assert dot.rstrip().endswith("}")
        assert "->" in dot

    def test_node_shapes(self, small_graph):
        dot = to_dot(small_graph)
        assert "shape=box" in dot          # inputs
        assert "shape=doublecircle" in dot  # outputs
        assert "shape=ellipse" in dot       # compute

    def test_labels_present(self, small_graph):
        dot = to_dot(small_graph)
        assert '"a"' in dot
        assert "add" in dot

    def test_edges_match_graph(self, small_graph):
        dot = to_dot(small_graph)
        assert dot.count("->") == small_graph.num_edges

    def test_cluster_stages(self, small_graph):
        dot = to_dot(small_graph, cluster_stages=True)
        assert "cluster_stage1" in dot
        assert "cluster_stage2" in dot

    def test_quote_escaping(self):
        g = Dfg('has "quotes"')
        a = g.add_input('in "x"')
        g.add_output(g.add_compute("add", [a]))
        dot = to_dot(g)
        assert '\\"' in dot

    def test_node_limit_guard(self):
        g = Dfg("big")
        prev = g.add_input()
        for _ in range(30):
            prev = g.add_compute("add", [prev])
        g.add_output(prev)
        with pytest.raises(ValueError):
            to_dot(g, max_nodes=10)
        assert to_dot(g, max_nodes=None)

    def test_real_kernel_exports(self, all_kernels):
        dot = to_dot(all_kernels["red"].dfg, cluster_stages=True, max_nodes=None)
        assert dot.count("->") == all_kernels["red"].dfg.num_edges
