"""Property-based fuzzing of the regression-fit paths.

The contract under fuzz: for *any* input — duplicates, ties, near-collinear
designs, extreme magnitudes, sub-minimal point sets — a fit either returns
entirely finite coefficients or raises a :class:`repro.errors.ReproError`
subclass.  It never returns ``nan``/``inf`` and never leaks a raw numpy
warning.
"""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FitError, ProjectionError, ReproError
from repro.cmos.transistors import TransistorCountFit, fit_power_law
from repro.wall.pareto import upper_frontier
from repro.wall.projection import ProjectionKind, fit_frontier

# Wide-but-representable magnitudes; the guards must handle the extremes.
wide_floats = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)
# A pool-based coordinate strategy: drawing from few distinct values makes
# exact duplicates and ties overwhelmingly likely.
tied_floats = st.sampled_from(
    [0.5, 1.0, 1.0, 2.0, 2.0 + 1e-13, 3.0, 1e-9, 1e9]
)
coords = st.one_of(wide_floats, tied_floats)

frontier_points = st.lists(st.tuples(coords, coords), min_size=0, max_size=25)


def _assert_finite_or_repro_error(fn):
    """Run *fn*; demand finite results or a ReproError, with no warnings."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any leaked numpy warning fails
        try:
            values = fn()
        except ReproError:
            return None
        for value in np.atleast_1d(np.asarray(values, dtype=float)).ravel():
            assert math.isfinite(value), f"non-finite fit output {value!r}"
        return values


class TestFitFrontierFuzz:
    @given(frontier_points, st.sampled_from(list(ProjectionKind)))
    @settings(max_examples=150)
    def test_finite_or_repro_error(self, points, kind):
        _assert_finite_or_repro_error(
            lambda: (
                lambda fit: (fit.alpha, fit.beta, fit.residual, fit.max_fitted_gain)
            )(fit_frontier(points, kind))
        )

    @given(frontier_points, st.sampled_from(list(ProjectionKind)), wide_floats)
    @settings(max_examples=150)
    def test_predict_honours_the_clamp(self, points, kind, physical):
        try:
            fit = fit_frontier(points, kind)
        except ReproError:
            return
        try:
            predicted = fit.predict(physical)
        except ReproError:
            return  # overflow at extreme physicals is a guarded outcome
        assert math.isfinite(predicted)
        assert predicted >= fit.max_fitted_gain
        assert fit.max_fitted_gain == max(y for _, y in upper_frontier(points))

    @given(st.lists(st.tuples(coords, coords), min_size=0, max_size=1))
    def test_sub_minimal_point_sets_always_rejected(self, points):
        with pytest.raises(ProjectionError):
            fit_frontier(points, ProjectionKind.LINEAR)

    @given(coords, st.integers(min_value=2, max_value=10))
    def test_degenerate_equal_x_always_rejected(self, x, n):
        points = [(x, float(i)) for i in range(n)]
        with pytest.raises(ProjectionError):
            fit_frontier(points, ProjectionKind.LINEAR)

    @given(wide_floats, st.floats(min_value=1e-18, max_value=1e-14), coords)
    def test_near_collinear_design_is_guarded(self, x, epsilon, y):
        # Two x values a hair apart: either the condition-number guard
        # trips or the fit still comes out finite.
        points = [(x, y), (x + x * epsilon, y + 1.0)]
        _assert_finite_or_repro_error(
            lambda: (lambda f: (f.alpha, f.beta))(
                fit_frontier(points, ProjectionKind.LINEAR)
            )
        )


class TestPowerLawFuzz:
    # Include non-positive and non-finite values: fit_power_law masks them.
    messy_floats = st.one_of(
        st.floats(allow_nan=True, allow_infinity=True, width=32),
        tied_floats,
    )

    @given(
        st.lists(messy_floats, min_size=0, max_size=25),
        st.lists(messy_floats, min_size=0, max_size=25),
    )
    @settings(max_examples=150)
    def test_finite_or_fit_error(self, xs, ys):
        n = min(len(xs), len(ys))
        result = _assert_finite_or_repro_error(
            lambda: fit_power_law(np.asarray(xs[:n]), np.asarray(ys[:n]))
        )
        if result is not None:
            coefficient, exponent, r2 = result
            assert coefficient > 0

    @given(st.floats(min_value=1e-3, max_value=1e3), wide_floats)
    def test_fit_on_duplicated_point_is_rejected(self, x, y):
        # All-identical positive points: zero predictor spread.
        with pytest.raises(FitError):
            fit_power_law(np.full(5, x), np.full(5, y))

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_round_trip_recovers_parameters(self, coefficient, exponent, spread):
        xs = np.array([1.0, 2.0, 4.0, 8.0]) * spread
        ys = coefficient * xs**exponent
        if not np.all(np.isfinite(ys) & (ys > 0)):
            return
        try:
            fitted_c, fitted_e, r2 = fit_power_law(xs, ys)
        except FitError:
            return  # extreme magnitudes may overflow the guarded kernel
        assert fitted_c == pytest.approx(coefficient, rel=1e-6)
        assert fitted_e == pytest.approx(exponent, abs=1e-9)

    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_transistor_fit_rejects_bad_density(self, density):
        fit = TransistorCountFit(coefficient=4.99e9, exponent=0.877)
        if math.isfinite(density) and density > 0:
            assert math.isfinite(fit.transistors(density)) or density < 1e-250
        else:
            with pytest.raises(ValueError):
                fit.transistors(density)

    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_constructor_rejects_non_finite_coefficients(self, coefficient):
        if math.isfinite(coefficient) and coefficient > 0:
            TransistorCountFit(coefficient=coefficient, exponent=1.0)
        else:
            with pytest.raises(FitError):
                TransistorCountFit(coefficient=coefficient, exponent=1.0)
