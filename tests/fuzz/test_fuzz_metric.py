"""Property-based fuzzing of the CSR metric, Eq 2 shares, and Eq 3/4 algebra.

Contract: every public entry point either returns finite values satisfying
its documented invariant or raises a :class:`repro.errors.ReproError` /
``ValueError`` — never ``nan``, ``inf``, or a silently wrong share.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.csr.metric import SHARE_TOLERANCE, csr, decompose_gain
from repro.csr.relations import build_relation_matrix, geometric_mean
from repro.errors import DatasetError

positive = st.floats(min_value=1e-150, max_value=1e150)
# Near-unity gains concentrate fuzzing on the share-denominator boundary.
near_unity = st.floats(min_value=-1e-6, max_value=1e-6).map(lambda d: 1.0 + d)
messy = st.floats(allow_nan=True, allow_infinity=True)


class TestCsrFuzz:
    @given(st.one_of(positive, near_unity), st.one_of(positive, near_unity))
    @settings(max_examples=200)
    def test_csr_finite_or_value_error(self, reported, physical):
        try:
            value = csr(reported, physical)
        except ValueError:
            return
        assert math.isfinite(value) and value > 0

    @given(messy, messy)
    def test_csr_never_returns_non_finite(self, reported, physical):
        try:
            value = csr(reported, physical)
        except ValueError:
            return
        assert math.isfinite(value)

    @given(st.one_of(positive, near_unity), st.one_of(positive, near_unity))
    @settings(max_examples=200)
    def test_shares_finite_and_complementary(self, reported, physical):
        try:
            d = decompose_gain(reported, physical)
            spec_share = d.specialization_share
            cmos_share = d.cmos_share
        except ValueError:
            return
        assert math.isfinite(spec_share)
        assert math.isfinite(cmos_share)
        assert spec_share + cmos_share == pytest.approx(1.0)

    # Stay off the exact band edge: rounding of 1.0 + fraction*tol can push
    # the representable value a ulp past the tolerance either way.
    @given(st.floats(min_value=-0.9, max_value=0.9))
    def test_share_is_zero_across_the_tolerance_band(self, fraction):
        reported = 1.0 + fraction * SHARE_TOLERANCE
        d = decompose_gain(reported, math.sqrt(reported))
        assert d.specialization_share == 0.0


class TestRelationAlgebraFuzz:
    @given(st.lists(positive, min_size=1, max_size=10))
    def test_geometric_mean_finite_and_bounded(self, values):
        try:
            mean = geometric_mean(values)
        except ValueError:
            return  # overflow-guarded extreme products
        assert math.isfinite(mean)
        assert min(values) * (1 - 1e-9) <= mean <= max(values) * (1 + 1e-9)

    @given(st.lists(messy, min_size=1, max_size=10))
    def test_geometric_mean_rejects_bad_operands(self, values):
        if all(math.isfinite(v) and v > 0 for v in values):
            return
        with pytest.raises(ValueError):
            geometric_mean(values)

    # Small random measurement tables: a few architectures sharing a pool
    # of app names, so direct pairs, transitive bridges, and disconnected
    # pairs all occur.
    measurements = st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.dictionaries(
            st.sampled_from(["app1", "app2", "app3", "app4", "app5", "app6"]),
            st.floats(min_value=1e-3, max_value=1e3),
            min_size=1,
            max_size=6,
        ),
        min_size=1,
        max_size=4,
    )

    @given(measurements, st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_matrix_antisymmetric_in_log_space(self, table, min_shared):
        matrix = build_relation_matrix(table, min_shared_apps=min_shared)
        for x in matrix.architectures:
            assert matrix.gain(x, x) == 1.0
            for y in matrix.architectures:
                if x == y or not matrix.has(x, y):
                    continue
                product = matrix.gain(x, y) * matrix.gain(y, x)
                assert product == pytest.approx(1.0, rel=1e-9)
                assert math.isfinite(matrix.gain(x, y))

    @given(measurements)
    def test_matrix_rejects_non_finite_gains(self, table):
        arch = next(iter(table))
        app = next(iter(table[arch]))
        table[arch][app] = float("inf")
        with pytest.raises(DatasetError):
            build_relation_matrix(table)
