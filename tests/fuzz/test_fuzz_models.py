"""Property-based fuzzing of the CMOS gains model, TDP laws, and the
streaming Pareto accumulator.

Contract: physical evaluations stay finite and positive over any plausible
chip description (and reject the implausible with ``ValueError``), TDP-law
round trips invert exactly, and the incremental Pareto frontier matches
the batch reference under heavy ties while rejecting non-finite points.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.sweep import ParetoAccumulator, pareto_points
from repro.cmos.gains import GainsModel
from repro.cmos.nodes import NODE_ERAS_TDP
from repro.cmos.tdp import TdpFit
from repro.errors import FitError, ValidationError

nodes = st.sampled_from([45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0])
areas = st.floats(min_value=1e-2, max_value=1e4)
frequencies = st.floats(min_value=1.0, max_value=1e5)
tdps = st.one_of(st.none(), st.floats(min_value=1e-3, max_value=1e4))
messy = st.floats(allow_nan=True, allow_infinity=True)


class TestGainsModelFuzz:
    model = GainsModel()

    @given(nodes, areas, frequencies, tdps)
    @settings(max_examples=200)
    def test_metrics_finite_and_positive(self, node, area, frequency, tdp):
        gains = self.model.evaluate(
            node, frequency, area_mm2=area, tdp_w=tdp
        )
        for metric in ("throughput", "energy_efficiency", "throughput_per_area"):
            value = gains.metric(metric)
            assert math.isfinite(value) and value > 0, f"{metric}: {value!r}"
        assert 0.0 < gains.active_fraction <= 1.0
        if tdp is not None and gains.tdp_limited:
            # A TDP-capped chip draws at most its cap, unless starvation
            # pushed it onto the minimum-activity floor (whose leakage and
            # floor power can legitimately exceed a tiny envelope).
            floor = self.model.config.min_active_fraction
            assert (
                gains.power_w <= tdp * (1 + 1e-9)
                or gains.active_fraction <= floor * (1 + 1e-9)
            )

    @given(nodes, messy, st.one_of(messy, st.none()))
    def test_bad_inputs_raise_value_error_not_nan(self, node, frequency, tdp):
        good_frequency = (
            math.isfinite(frequency) and frequency > 0
        )
        good_tdp = tdp is None or (math.isfinite(tdp) and tdp > 0)
        if good_frequency and good_tdp:
            try:
                gains = self.model.evaluate(
                    node, frequency, area_mm2=100.0, tdp_w=tdp
                )
            except ValueError:
                return  # extreme magnitudes may trip the overflow guards
            assert math.isfinite(gains.throughput)
        else:
            with pytest.raises(ValueError):
                self.model.evaluate(node, frequency, area_mm2=100.0, tdp_w=tdp)


class TestTdpLawFuzz:
    era = NODE_ERAS_TDP[0]

    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=0.1, max_value=0.95),
        st.floats(min_value=1e-2, max_value=1e4),
        st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=150)
    def test_budget_round_trip(self, coefficient, exponent, tdp, frequency):
        fit = TdpFit(era=self.era, coefficient=coefficient, exponent=exponent)
        transistors = fit.active_transistors(tdp, frequency)
        assert math.isfinite(transistors) and transistors > 0
        recovered = fit.tdp_for(transistors, frequency)
        assert recovered == pytest.approx(tdp, rel=1e-9)

    @given(messy)
    def test_constructor_rejects_bad_coefficients(self, coefficient):
        if math.isfinite(coefficient) and coefficient > 0:
            TdpFit(era=self.era, coefficient=coefficient, exponent=0.5)
        else:
            with pytest.raises(FitError):
                TdpFit(era=self.era, coefficient=coefficient, exponent=0.5)


class TestParetoAccumulatorFuzz:
    # Heavy-tie coordinates: a tiny pool of values plus arbitrary floats.
    coord = st.one_of(
        st.sampled_from([0.0, 1.0, 1.0, 2.0, -1.0]),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )

    @given(st.lists(st.tuples(coord, coord), max_size=40))
    @settings(max_examples=200)
    def test_matches_batch_reference_under_ties(self, points):
        accumulator = ParetoAccumulator()
        for index, (x, y) in enumerate(points):
            accumulator.add(x, y, index)
        streaming = [(x, y) for x, y, _ in accumulator.frontier()]
        batch = [
            (x, y)
            for x, y, _ in pareto_points(
                [(x, y, i) for i, (x, y) in enumerate(points)]
            )
        ]
        assert streaming == batch

    @given(
        st.sampled_from([float("nan"), float("inf"), float("-inf")]),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_rejects_non_finite_coordinates(self, bad, good):
        accumulator = ParetoAccumulator()
        with pytest.raises(ValidationError):
            accumulator.add(bad, good)
        with pytest.raises(ValidationError):
            accumulator.add(good, bad)
        assert len(accumulator) == 0  # the frontier stays uncorrupted
