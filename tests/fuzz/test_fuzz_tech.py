"""Property-based fuzzing of the technology backends and carbon overlay.

Contract: wall projections respond monotonically to the device knobs
that grow transistor budgets (density coefficient, TDP coefficient),
derived-backend surfaces stay finite and physical under any plausible
parameter perturbation, and the carbon metric is non-negative with a
total that is *exactly* embodied + operational.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.tech import DeviceParams, carbon_footprint, derived_backend
from repro.tech.base import SURFACE_NODES
from repro.tech.carbon import CarbonParams
from repro.wall.limits import _limits, accelerator_wall

scales = st.floats(min_value=0.25, max_value=4.0)
small_deltas = st.floats(min_value=-0.05, max_value=0.05)


def _backend(params: DeviceParams):
    return derived_backend("fuzzdev", "Fuzz device", "fuzz", "fuzz", params)


def _limit(domain: str, params: DeviceParams) -> float:
    backend = _backend(params)
    report = accelerator_wall(
        domain,
        None,
        "performance",
        limits_row=backend.wall_limits(_limits()[domain]),
        limit_model=backend.model(),
    )
    return report.physical_limit


class TestWallMonotonicity:
    @given(st.tuples(scales, scales))
    @settings(max_examples=20, deadline=None)
    def test_denser_devices_never_lower_an_uncapped_wall(self, pair):
        # video_decoding has no TDP cap: potential scales exactly with
        # the density-law coefficient, so the wall must follow it.
        low, high = sorted(pair)
        limit_low = _limit(
            "video_decoding", DeviceParams(density_coefficient_scale=low)
        )
        limit_high = _limit(
            "video_decoding", DeviceParams(density_coefficient_scale=high)
        )
        assert limit_high >= limit_low * (1 - 1e-9)
        if high > low:
            assert math.isclose(limit_high / limit_low, high / low, rel_tol=1e-6)

    @given(st.tuples(scales, scales))
    @settings(max_examples=15, deadline=None)
    def test_bigger_power_budgets_never_lower_a_capped_wall(self, pair):
        # bitcoin_mining is TDP-capped: a device sustaining more active
        # transistors per watt can only move the wall outward.
        low, high = sorted(pair)
        limit_low = _limit("bitcoin_mining", DeviceParams(tdp_coefficient_scale=low))
        limit_high = _limit("bitcoin_mining", DeviceParams(tdp_coefficient_scale=high))
        assert limit_high >= limit_low * (1 - 1e-9)


class TestSurfaceSanity:
    @given(scales, scales, scales, small_deltas)
    @settings(max_examples=30, deadline=None)
    def test_perturbed_surfaces_stay_finite_and_monotone(
        self, energy, leakage, density, exponent_delta
    ):
        backend = _backend(
            DeviceParams(
                dynamic_energy_scale=energy,
                leakage_scale=leakage,
                density_coefficient_scale=density,
                density_exponent_delta=exponent_delta,
            )
        )
        surface = backend.density_surface()
        values = [surface[node] for node in SURFACE_NODES]
        assert all(math.isfinite(v) and v > 0 for v in values)
        assert values == sorted(values)
        tdp = backend.tdp_surface()
        assert all(math.isfinite(v) and v > 0 for v in tdp.values())


class TestCarbonInvariants:
    areas = st.floats(min_value=1.0, max_value=5e3)
    nodes = st.sampled_from([45.0, 28.0, 16.0, 7.0, 5.0])
    powers = st.floats(min_value=0.0, max_value=5e3)
    yields = st.floats(min_value=1e-3, max_value=1.0)
    dies = st.integers(min_value=1, max_value=8)

    @given(areas, nodes, powers, yields, dies)
    @settings(max_examples=100)
    def test_non_negative_and_exactly_additive(
        self, area, node, power, die_yield, die_count
    ):
        report = carbon_footprint(
            area, node, power, die_count=die_count, die_yield=die_yield
        )
        assert report.embodied_gco2e >= 0
        assert report.operational_gco2e >= 0
        assert math.isfinite(report.total_gco2e)
        # Exact, not approximate: the total IS the sum.
        assert report.total_gco2e == (
            report.embodied_gco2e + report.operational_gco2e
        )

    @given(areas, nodes, st.tuples(powers, powers))
    @settings(max_examples=50)
    def test_operational_monotone_in_power(self, area, node, pair):
        low, high = sorted(pair)
        assert (
            carbon_footprint(area, node, high).operational_gco2e
            >= carbon_footprint(area, node, low).operational_gco2e
        )

    @given(areas, nodes, powers, st.floats(min_value=0.0, max_value=0.5), dies)
    @settings(max_examples=50)
    def test_packaging_adder_linear_in_extra_dies(
        self, area, node, power, overhead, die_count
    ):
        params = CarbonParams(packaging_overhead_fraction=overhead)
        base = carbon_footprint(area, node, power, params, die_count=1)
        split = carbon_footprint(area, node, power, params, die_count=die_count)
        expected = 1.0 + overhead * (die_count - 1)
        assert math.isclose(
            split.embodied_gco2e, base.embodied_gco2e * expected, rel_tol=1e-9
        )
