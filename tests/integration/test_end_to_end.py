"""Integration tests across module boundaries."""

import pytest

from repro import CmosPotentialModel, csr, decompose_gain
from repro.accel.attribution import attribute_gains
from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.sweep import default_design_grid, sweep
from repro.csr.series import compute_csr_series
from repro.datasheets.schema import Category
from repro.dfg.analysis import analyze
from repro.dfg.complexity import Component, Concept, concept_limit
from repro.workloads import WORKLOADS, build_kernel


class TestModelPipeline:
    """datasheets -> fits -> physical gains -> CSR."""

    def test_refit_model_close_to_paper_model(self, paper_model, fitted_model):
        # Both models must agree on a representative physical gain within 25%.
        old = dict(node_nm=45, frequency_mhz=1000, area_mm2=100, tdp_w=100)
        new = dict(node_nm=7, frequency_mhz=1000, area_mm2=100, tdp_w=100)
        def gain(model):
            return (
                model.evaluate(**new).throughput / model.evaluate(**old).throughput
            )
        assert gain(fitted_model) == pytest.approx(gain(paper_model), rel=0.25)

    def test_top_level_quickstart(self):
        model = CmosPotentialModel.paper()
        old = model.evaluate(45, 1000, area_mm2=100, tdp_w=100)
        new = model.evaluate(5, 1000, area_mm2=100, tdp_w=100)
        physical = new.throughput / old.throughput
        decomposition = decompose_gain(250.0, physical)
        assert decomposition.specialization == pytest.approx(
            csr(250.0, physical)
        )

    def test_series_from_database_chips(self, paper_model, reference_db):
        gpus = reference_db.category(Category.GPU).with_area()
        chips = [(spec, spec.transistors or 1e9) for spec in list(gpus)[:5]]
        series = compute_csr_series(chips, paper_model)
        assert len(series) == 5


class TestDsePipeline:
    """workloads -> trace -> schedule -> power -> attribution."""

    @pytest.mark.parametrize("abbrev", [w.abbrev for w in WORKLOADS])
    def test_every_kernel_evaluates_end_to_end(self, abbrev, all_kernels):
        kernel = all_kernels[abbrev.lower()]
        report = evaluate_design(kernel, DesignPoint(node_nm=14, partition=8))
        assert report.runtime_s > 0
        assert report.energy_nj > 0

    def test_sweep_then_attribute(self):
        kernel = build_kernel("RED")
        result = sweep(
            kernel,
            default_design_grid(
                nodes=(45.0, 5.0), partitions=(1, 8, 64), simplifications=(1, 9)
            ),
        )
        best = result.best_throughput()
        attribution = attribute_gains(
            kernel, partitions=(1, 8, 64), simplifications=(1, 9)
        )
        assert attribution.total_gain >= best.throughput_ops / max(
            r.throughput_ops for r in result
        )

    def test_dfg_limits_consistent_with_schedule(self):
        # The Table II partitioning time limit (depth) lower-bounds the
        # scheduler's cycle count at unlimited parallelism (up to per-op
        # latency factors).
        kernel = build_kernel("RED")
        stats = analyze(kernel.dfg)
        limit = concept_limit(stats, Component.COMPUTATION, Concept.PARTITIONING)
        report = evaluate_design(kernel, DesignPoint(node_nm=45, partition=524288))
        assert report.cycles >= limit.time


class TestStudiesAndWall:
    def test_fitted_model_reproduces_shapes_too(self, fitted_model):
        from repro.studies import video_decoders

        summary = video_decoders.study().summary(fitted_model)
        assert 40 <= summary["max_performance_gain"] <= 95
        assert summary["best_performer_csr"] < 1.2

    def test_wall_with_fitted_model(self, fitted_model):
        from repro.wall import accelerator_wall

        report = accelerator_wall("video_decoding", fitted_model)
        low, high = report.headroom
        assert high > low >= 1.0
