"""Golden regression snapshot of the reproduction's headline numbers.

These pin the values EXPERIMENTS.md reports (with modest tolerances), so an
accidental change to the model, a dataset, or the scheduler shows up as a
diff against the recorded reproduction — not silently.  When a change is
*intentional*, update both this file and EXPERIMENTS.md.
"""

import pytest

from repro.cmos.model import CmosPotentialModel
from repro.datasheets.reference import reference_database


@pytest.fixture(scope="module")
def model():
    return CmosPotentialModel.paper()


class TestGoldenFits:
    def test_refit_density_law(self):
        fitted = CmosPotentialModel.from_database(reference_database())
        assert fitted.density_fit.coefficient == pytest.approx(5.04e9, rel=0.02)
        assert fitted.density_fit.exponent == pytest.approx(0.869, abs=0.005)

    def test_refit_tdp_laws(self):
        fitted = CmosPotentialModel.from_database(reference_database())
        expected = {
            "55nm-40nm": (0.02, 0.85),
            "32nm-28nm": (0.11, 0.73),
            "22nm-12nm": (0.41, 0.60),
            "10nm-5nm": (2.10, 0.41),
        }
        for fit in fitted.tdp_model.fits:
            coefficient, exponent = expected[fit.era.name]
            assert fit.coefficient == pytest.approx(coefficient, rel=0.15)
            assert fit.exponent == pytest.approx(exponent, abs=0.03)


class TestGoldenStudies:
    def test_video_decoders(self, model):
        from repro.studies import video_decoders

        summary = video_decoders.study().summary(model)
        assert summary["max_performance_gain"] == pytest.approx(64.2, rel=0.02)
        assert summary["max_efficiency_gain"] == pytest.approx(35.7, rel=0.02)
        assert summary["best_performer_csr"] == pytest.approx(0.53, abs=0.05)

    def test_bitcoin(self, model):
        from repro.studies import bitcoin

        all_platforms = bitcoin.study().summary(model)
        assert all_platforms["max_performance_gain"] == pytest.approx(
            6.05e5, rel=0.05
        )
        asic = bitcoin.asic_study().summary(model)
        assert asic["max_performance_gain"] == pytest.approx(509, rel=0.02)
        assert asic["max_performance_csr"] == pytest.approx(6.1, abs=0.5)

    def test_fpga_cnn(self, model):
        from repro.studies import fpga_cnn

        alexnet = fpga_cnn.study("alexnet").summary(model)
        assert alexnet["max_performance_gain"] == pytest.approx(24.0, rel=0.02)
        vgg = fpga_cnn.study("vgg16").summary(model)
        assert vgg["max_performance_gain"] == pytest.approx(8.8, rel=0.03)

    def test_gpu_graphics(self, model):
        from repro.studies import gpu_graphics

        summary = gpu_graphics.study("GTA V FHD").summary(model)
        assert summary["max_performance_gain"] == pytest.approx(4.8, abs=0.3)
        csr = gpu_graphics.architecture_csr(model)
        assert csr["Maxwell 2"] == pytest.approx(1.31, abs=0.05)
        assert csr["Fermi"] == pytest.approx(0.95, abs=0.05)


class TestGoldenWall:
    def test_headrooms(self, model):
        from repro.wall import wall_report_all_domains

        expected = {
            ("video_decoding", "performance"): (1.8, 99.6),
            ("video_decoding", "efficiency"): (1.7, 5.4),
            ("gaming_graphics", "performance"): (1.3, 3.2),
            ("gaming_graphics", "efficiency"): (1.6, 3.2),
            ("convolutional_nn", "performance"): (1.9, 6.8),
            ("convolutional_nn", "efficiency"): (2.7, 6.4),
            ("bitcoin_mining", "performance"): (1.0, 9.4),
            ("bitcoin_mining", "efficiency"): (1.1, 3.8),
        }
        for report in wall_report_all_domains(model):
            want_low, want_high = expected[(report.domain, report.metric)]
            low, high = report.headroom
            assert low == pytest.approx(want_low, abs=0.2), report.domain
            assert high == pytest.approx(want_high, rel=0.1), report.domain


class TestGoldenExtensions:
    def test_tpu_headline(self):
        from repro.studies.tpu import tpu_case_study

        case = tpu_case_study()
        assert case.efficiency_gain_vs_cpu == pytest.approx(36.4, rel=0.1)

    def test_winograd_multiplies(self):
        from repro.workloads import conv

        assert conv.multiply_count(conv.build_direct()) == 324
        assert conv.multiply_count(conv.build_winograd()) == 144

    def test_dennard_gap_at_5nm(self):
        from repro.cmos.history import dennard_gap

        gap = dennard_gap(5.0)
        assert gap.frequency_shortfall == pytest.approx(4.5, abs=0.2)
        assert gap.power_density_excess == pytest.approx(10.9, rel=0.1)
