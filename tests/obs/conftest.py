"""Isolation for the process-wide observability singletons."""

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import set_tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Each test starts and ends with no tracer and empty metrics."""
    previous = set_tracer(None)
    reset_metrics()
    try:
        yield
    finally:
        set_tracer(previous)
        reset_metrics()
