"""Histogram semantics: bucketing, quantiles, merge algebra, concurrency.

The hypothesis properties pin the contracts the serving fleet relies on:
merging per-worker histograms must be order-independent (any worker's
``/metrics`` scrape may absorb peers in any order), bucket counts must
account for every observation, quantile estimates must bracket the true
quantile within one log-linear bucket width, and a snapshot must survive
JSON (the internal-listener wire format) bit-exactly.
"""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    HIST_MAX_INDEX,
    HIST_MIN,
    HIST_SUBBUCKETS,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)

values = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, min_size=0, max_size=60)


def hist_of(observations) -> Histogram:
    h = Histogram()
    for v in observations:
        h.observe(v)
    return h


def discrete_state(h: Histogram):
    """Everything but the float sum (whose value depends on add order)."""
    return (h.count, h.min_s, h.max_s, dict(h.buckets))


class TestBuckets:
    def test_underflow_and_overflow(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(HIST_MIN) == 0
        assert bucket_index(float("nan")) == 0
        assert bucket_index(1e30) == HIST_MAX_INDEX
        assert bucket_bounds(0) == (0.0, HIST_MIN)
        assert math.isinf(bucket_bounds(HIST_MAX_INDEX)[1])

    def test_bounds_partition_the_positive_axis(self):
        # Consecutive buckets tile without gaps or overlaps.
        for index in range(HIST_MAX_INDEX):
            assert bucket_bounds(index)[1] == bucket_bounds(index + 1)[0]

    @given(values)
    def test_value_lands_inside_its_bucket_bounds(self, value):
        index = bucket_index(value)
        lower, upper = bucket_bounds(index)
        if index == 0:
            assert value <= upper
        else:
            assert lower <= value <= upper

    def test_power_of_two_boundaries_are_exact(self):
        # frexp keeps octave edges exact where log2 would wobble: a value
        # exactly on an octave boundary opens that octave's first bucket.
        for octave in range(1, 30):
            edge = HIST_MIN * 2.0 ** octave
            index = bucket_index(edge)
            assert index == 1 + octave * HIST_SUBBUCKETS
            assert bucket_bounds(index)[0] == edge

    @given(value_lists)
    def test_bucket_counts_sum_to_observation_count(self, observations):
        h = hist_of(observations)
        assert sum(h.buckets.values()) == h.count == len(observations)


class TestQuantile:
    @given(
        st.lists(values, min_size=1, max_size=80),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_estimate_brackets_true_quantile_within_one_bucket(self, obs, q):
        h = hist_of(obs)
        ordered = sorted(obs)
        true = ordered[min(len(obs) - 1, max(0, math.ceil(q * len(obs)) - 1))]
        estimate = h.quantile(q)
        _, upper = bucket_bounds(bucket_index(true))
        assert true <= estimate <= upper

    def test_empty_histogram(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_single_observation_is_exact(self):
        h = hist_of([0.25])
        assert h.quantile(0.5) == 0.25
        assert h.quantile(0.99) == 0.25


class TestMergeAlgebra:
    @given(value_lists, value_lists)
    def test_merge_is_commutative(self, a, b):
        left = hist_of(a).merge(hist_of(b))
        right = hist_of(b).merge(hist_of(a))
        assert discrete_state(left) == discrete_state(right)
        assert left.sum_s == pytest.approx(right.sum_s, rel=1e-9, abs=1e-12)

    @given(value_lists, value_lists, value_lists)
    def test_merge_is_associative(self, a, b, c):
        left = hist_of(a).merge(hist_of(b)).merge(hist_of(c))
        inner = hist_of(b).merge(hist_of(c))
        right = hist_of(a).merge(inner)
        assert discrete_state(left) == discrete_state(right)
        assert left.sum_s == pytest.approx(right.sum_s, rel=1e-9, abs=1e-12)

    @given(value_lists, value_lists)
    def test_merge_equals_observing_everything(self, a, b):
        merged = hist_of(a).merge(hist_of(b))
        direct = hist_of(a + b)
        assert discrete_state(merged) == discrete_state(direct)
        assert merged.sum_s == pytest.approx(direct.sum_s, rel=1e-9, abs=1e-12)

    @given(value_lists)
    @settings(max_examples=50)
    def test_snapshot_json_absorb_round_trips_bit_exactly(self, obs):
        h = hist_of(obs)
        entry = h.snapshot_entry()
        wire = json.loads(json.dumps(entry))
        restored = Histogram()
        restored.absorb_entry(wire)
        # Bit-exact: one JSON hop and absorb into empty must change nothing,
        # including the float sum (json round-trips float repr exactly).
        assert restored.snapshot_entry() == entry
        assert restored.sum_s == h.sum_s

    @given(value_lists, value_lists)
    def test_registry_absorb_matches_merge(self, a, b):
        source = MetricsRegistry()
        for v in a:
            source.histogram("lat").observe(v)
        target = MetricsRegistry()
        for v in b:
            target.histogram("lat").observe(v)
        target.absorb(json.loads(json.dumps(source.snapshot())))
        expected = hist_of(b).merge(hist_of(a))
        assert discrete_state(target.histogram("lat")) == discrete_state(expected)


class TestConcurrentMutation:
    """Regression: instrument mutation used to be unlocked read-modify-write,
    so threaded serving lost increments under contention."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                fn()

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        self._hammer(lambda: counter.inc())
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_timer_observations_are_not_lost(self):
        registry = MetricsRegistry()
        timer = registry.timer("lat")
        self._hammer(lambda: timer.observe(0.001))
        assert timer.count == self.THREADS * self.PER_THREAD
        assert timer.total_s == pytest.approx(
            0.001 * self.THREADS * self.PER_THREAD, rel=1e-6
        )

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        self._hammer(lambda: hist.observe(0.001))
        total = self.THREADS * self.PER_THREAD
        assert hist.count == total
        assert sum(hist.buckets.values()) == total
        assert len(hist.buckets) == 1  # identical value -> one bucket


class TestRender:
    def test_registry_render_shows_quantiles(self):
        registry = MetricsRegistry()
        for ms in (1, 2, 3, 50):
            registry.histogram("serve.latency_s").observe(ms / 1e3)
        out = registry.render()
        assert "serve.latency_s" in out
        assert "histogram" in out
        assert "p50" in out and "p99" in out

    def test_render_tolerates_malformed_entry(self):
        out = MetricsRegistry().render(
            {"bad": {"type": "histogram", "buckets": [1, 2]}}
        )
        assert "malformed" in out
