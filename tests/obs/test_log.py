"""Tests for structured key=value logging helpers."""

import io
import logging

from repro.obs.log import ROOT_LOGGER, configure_logging, get_logger, kv


class TestGetLogger:
    def test_prefixes_repro_namespace(self):
        assert get_logger("accel.sweep").name == "repro.accel.sweep"

    def test_already_namespaced_name_unchanged(self):
        assert get_logger("repro.accel.sweep").name == "repro.accel.sweep"
        assert get_logger("repro").name == "repro"


class TestKv:
    def test_basic_pairs_in_order(self):
        assert kv(kernel="TRD", points=96) == "kernel=TRD points=96"

    def test_floats_compact(self):
        assert kv(elapsed_s=0.123456789) == "elapsed_s=0.123457"

    def test_strings_with_spaces_quoted(self):
        assert kv(msg="two words") == "msg='two words'"

    def test_strings_with_equals_quoted(self):
        assert kv(expr="a=b") == "expr='a=b'"

    def test_bool_and_none(self):
        assert kv(flag=True, missing=None) == "flag=True missing=None"


class TestConfigureLogging:
    def teardown_method(self):
        root = logging.getLogger(ROOT_LOGGER)
        for handler in list(root.handlers):
            if handler.get_name() == "repro-obs":
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def _obs_handlers(self):
        root = logging.getLogger(ROOT_LOGGER)
        return [h for h in root.handlers if h.get_name() == "repro-obs"]

    def test_verbosity_levels(self):
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG
        assert configure_logging(5).level == logging.DEBUG

    def test_idempotent_single_handler(self):
        configure_logging(1)
        configure_logging(2)
        assert len(self._obs_handlers()) == 1

    def test_messages_reach_stream(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("accel.sweep").info(
            "sweep.done %s", kv(kernel="TRD", points=96)
        )
        line = stream.getvalue()
        assert "repro.accel.sweep" in line
        assert "sweep.done kernel=TRD points=96" in line

    def test_quiet_mode_suppresses_info(self):
        stream = io.StringIO()
        configure_logging(0, stream=stream)
        get_logger("accel.sweep").info("hidden")
        get_logger("accel.sweep").warning("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()
