"""Tests for the process-wide metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    metrics,
    reset_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_timer_observe_and_mean(self):
        timer = Timer()
        assert timer.mean_s == 0.0  # no division by zero when unused
        timer.observe(0.2)
        timer.observe(0.4)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(0.6)
        assert timer.mean_s == pytest.approx(0.3)

    def test_timer_context_manager(self):
        timer = Timer()
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total_s >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.timer("t") is registry.timer("t")

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_snapshot_shape_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.gauge("engine.jobs").set(2)
        registry.timer("schedule").observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["cache.hits"] == {"type": "counter", "value": 3}
        assert snap["engine.jobs"] == {"type": "gauge", "value": 2.0}
        assert snap["schedule"] == {
            "type": "timer",
            "count": 1,
            "total_s": 0.5,
        }

    def test_absorb_adds_counters_and_timers_overwrites_gauges(self):
        source = MetricsRegistry()
        source.counter("hits").inc(2)
        source.gauge("jobs").set(4)
        source.timer("schedule").observe(1.0)

        target = MetricsRegistry()
        target.counter("hits").inc(1)
        target.gauge("jobs").set(1)
        target.timer("schedule").observe(0.5)
        target.absorb(source.snapshot())

        assert target.counter("hits").value == 3
        assert target.gauge("jobs").value == 4.0
        assert target.timer("schedule").count == 2
        assert target.timer("schedule").total_s == pytest.approx(1.5)

    def test_absorb_skips_unknown_kind(self):
        # Regression: a snapshot from a newer library version used to raise.
        registry = MetricsRegistry()
        registry.absorb({
            "good": {"type": "counter", "value": 2},
            "exotic": {"type": "histogram", "buckets": [1, 2]},
        })
        assert registry.counter("good").value == 2
        snap = registry.snapshot()
        assert "exotic" not in snap
        assert snap["metrics.absorb.skipped"]["value"] == 1

    def test_absorb_skips_non_dict_and_bad_values(self):
        registry = MetricsRegistry()
        registry.absorb({
            "not-a-dict": 7,
            "bad-counter": {"type": "counter", "value": "NaNish"},
            "bad-timer": {"type": "timer", "count": None, "total_s": 1.0},
            "ok": {"type": "gauge", "value": 3.5},
        })
        assert registry.gauge("ok").value == 3.5
        assert registry.counter("metrics.absorb.skipped").value == 3
        # A half-bad timer entry must not half-apply.
        assert registry.timer("bad-timer").count == 0
        assert registry.timer("bad-timer").total_s == 0.0

    def test_absorb_clean_snapshot_has_no_skip_counter(self):
        registry = MetricsRegistry()
        registry.absorb({"x": {"type": "counter", "value": 1}})
        assert "metrics.absorb.skipped" not in registry.snapshot()

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_render_lists_every_metric_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(7)
        registry.gauge("a.gauge").set(1.5)
        registry.timer("c.timer").observe(0.25)
        lines = registry.render().splitlines()
        assert [line.split()[0] for line in lines] == [
            "a.gauge",
            "b.count",
            "c.timer",
        ]
        assert "7" in lines[1]
        assert "over 1 calls" in lines[2]

    def test_render_accepts_persisted_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        persisted = json.loads(json.dumps(registry.snapshot()))
        assert MetricsRegistry().render(persisted) == registry.render()


class TestProcessWideRegistry:
    def test_metrics_returns_singleton(self):
        assert metrics() is metrics()

    def test_reset_metrics_clears(self):
        metrics().counter("leak").inc()
        reset_metrics()
        assert metrics().snapshot() == {}
