"""Tests for the span tracer and its Chrome trace-event export."""

import json
import os
import pickle
import threading

import pytest

from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, span


class TestSpanRecording:
    def test_records_name_timing_and_track(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (recorded,) = tracer.spans
        assert recorded.name == "work"
        assert recorded.duration_s >= 0.0
        assert recorded.pid == os.getpid()
        assert recorded.tid == threading.get_ident()
        assert recorded.depth == 0
        assert recorded.end_s == pytest.approx(
            recorded.start_s + recorded.duration_s
        )

    def test_attrs_carried_through(self):
        tracer = Tracer()
        with tracer.span("sweep", kernel="TRD", designs=96):
            pass
        assert tracer.spans[0].attrs == {"kernel": "TRD", "designs": 96}

    def test_nesting_depth_and_containment(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["outer"].contains(by_name["inner"])
        assert not by_name["inner"].contains(by_name["outer"])

    def test_inner_span_finishes_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_sibling_spans_back_at_same_depth(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.depth for s in tracer.spans] == [0, 0]

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]
        # The stack unwound: the next span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.spans[1].depth == 0

    def test_spans_are_picklable(self):
        tracer = Tracer()
        with tracer.span("chunk", kernel="S3D"):
            pass
        clone = pickle.loads(pickle.dumps(tracer.spans[0]))
        assert clone == tracer.spans[0]


class TestTracerCollection:
    def test_drain_empties_and_returns(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert len(tracer) == 0

    def test_absorb_merges_foreign_spans(self):
        parent, worker = Tracer(), Tracer()
        with parent.span("parent"):
            pass
        with worker.span("worker"):
            pass
        parent.absorb(worker.drain())
        assert sorted(s.name for s in parent.spans) == ["parent", "worker"]


class TestModuleLevelSpan:
    def test_noop_without_tracer(self):
        assert get_tracer() is None
        with span("ignored", anything=1):
            pass  # must not raise, must not record anywhere

    def test_records_on_installed_tracer(self):
        tracer = Tracer()
        assert set_tracer(tracer) is None
        try:
            with span("hello", n=2):
                pass
        finally:
            assert set_tracer(None) is tracer
        assert [s.name for s in tracer.spans] == ["hello"]

    def test_set_tracer_returns_previous(self):
        first, second = Tracer(), Tracer()
        set_tracer(first)
        assert set_tracer(second) is first
        assert get_tracer() is second
        set_tracer(None)


class TestChromeExport:
    def test_event_schema(self):
        tracer = Tracer()
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        events = tracer.chrome_events()
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)

    def test_timestamps_rebased_to_zero(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        events = tracer.chrome_events()
        assert min(e["ts"] for e in events) == 0.0

    def test_events_sorted_by_start(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.chrome_events()]
        assert names == ["outer", "inner"]  # start order, not finish order

    def test_export_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("schedule", partition=4):
            pass
        path = tracer.export_chrome(tmp_path / "sub" / "trace.json")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["name"] == "schedule"
        assert event["args"] == {"partition": 4}

    def test_empty_tracer_exports_empty_list(self, tmp_path):
        path = Tracer().export_chrome(tmp_path / "empty.json")
        assert json.loads(path.read_text())["traceEvents"] == []


class TestStageRows:
    def test_aggregates_by_name_longest_first(self):
        tracer = Tracer()
        tracer.absorb(
            [
                Span("fast", 0.0, 0.1, 1, 1, 0),
                Span("slow", 0.0, 0.7, 1, 1, 0),
                Span("fast", 0.2, 0.2, 1, 1, 0),
            ]
        )
        rows = tracer.stage_rows()
        assert [r["stage"] for r in rows] == ["slow", "fast"]
        slow, fast = rows
        assert slow["calls"] == 1 and fast["calls"] == 2
        assert float(fast["total_s"]) == pytest.approx(0.3)
        assert float(fast["mean_ms"]) == pytest.approx(150.0)
        assert slow["share"] == "70.0%"

    def test_empty_tracer_has_no_rows(self):
        assert Tracer().stage_rows() == []
