"""Trace-id plumbing: header parsing, context binding, span stamping."""

from __future__ import annotations

import logging

import pytest

from repro.obs.log import configure_logging, set_log_run_id
from repro.obs.trace import (
    Tracer,
    current_trace_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    span,
    trace_id_from_headers,
    trace_scope,
)

TRACE32 = "0af7651916cd43dd8448eb211c80319c"


class TestParseTraceparent:
    def test_valid(self):
        value = f"00-{TRACE32}-b7ad6b7169203331-01"
        assert parse_traceparent(value) == TRACE32

    def test_rejects_all_zero_trace_id(self):
        assert parse_traceparent(f"00-{'0' * 32}-b7ad6b7169203331-01") is None

    @pytest.mark.parametrize(
        "value",
        [
            "",
            "garbage",
            f"00-{TRACE32}-b7ad6b7169203331",  # missing flags
            f"00-{TRACE32[:-1]}-b7ad6b7169203331-01",  # short trace id
            f"zz-{TRACE32}-b7ad6b7169203331-01",  # bad version
        ],
    )
    def test_rejects_malformed(self, value):
        assert parse_traceparent(value) is None


class TestTraceIdFromHeaders:
    def test_traceparent_wins_over_x_trace_id(self):
        headers = {
            "traceparent": f"00-{TRACE32}-b7ad6b7169203331-01",
            "x-trace-id": "other-id",
        }
        assert trace_id_from_headers(headers) == TRACE32

    def test_bare_x_trace_id(self):
        assert trace_id_from_headers({"x-trace-id": "req-42.a"}) == "req-42.a"

    def test_malformed_values_are_absent(self):
        assert trace_id_from_headers({"traceparent": "nope"}) is None
        assert trace_id_from_headers({"x-trace-id": "has space"}) is None
        assert trace_id_from_headers({"x-trace-id": "x" * 65}) is None
        assert trace_id_from_headers({}) is None


class TestTraceScope:
    def test_binds_and_restores(self):
        assert current_trace_id() is None
        with trace_scope("abc"):
            assert current_trace_id() == "abc"
            with trace_scope("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "abc"
        assert current_trace_id() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_scope("abc"):
                raise RuntimeError("boom")
        assert current_trace_id() is None

    def test_none_scope_is_a_no_op_binding(self):
        with trace_scope("outer"):
            with trace_scope(None):
                assert current_trace_id() is None
            assert current_trace_id() == "outer"

    def test_new_trace_id_is_32_hex_and_unique(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        for tid in (a, b):
            assert len(tid) == 32
            int(tid, 16)


class TestSpanStamping:
    def test_span_carries_bound_trace_id(self):
        tracer = Tracer()
        set_tracer(tracer)
        with trace_scope("tid-1"):
            with span("work"):
                pass
        with span("untraced"):
            pass
        spans = tracer.drain()
        assert [s.trace_id for s in spans] == ["tid-1", None]

    def test_take_removes_only_matching_spans(self):
        tracer = Tracer()
        set_tracer(tracer)
        with trace_scope("keep"):
            with span("a"):
                pass
        with trace_scope("taken"):
            with span("b"):
                pass
            with span("c"):
                pass
        taken = tracer.take("taken")
        assert sorted(s.name for s in taken) == ["b", "c"]
        assert [s.name for s in tracer.drain()] == ["a"]

    def test_bounded_ring_evicts_oldest(self):
        tracer = Tracer(max_spans=3)
        set_tracer(tracer)
        for i in range(5):
            with span(f"s{i}"):
                pass
        assert [s.name for s in tracer.drain()] == ["s2", "s3", "s4"]

    def test_chrome_events_include_trace_id(self):
        tracer = Tracer()
        set_tracer(tracer)
        with trace_scope("tid-9"):
            with span("work"):
                pass
        events = tracer.chrome_events()
        assert events[0]["args"]["trace_id"] == "tid-9"


class TestLogContextFilter:
    def _capture(self, message: str) -> str:
        root = configure_logging(verbosity=1)
        handler = next(
            h for h in root.handlers if h.get_name() == "repro-obs"
        )
        record = logging.getLogger("repro.test").makeRecord(
            "repro.test", logging.INFO, __file__, 1, message, (), None
        )
        for f in handler.filters:
            f.filter(record)
        return handler.format(record)

    def test_plain_log_has_no_context_suffix(self):
        set_log_run_id(None)
        line = self._capture("hello")
        assert "trace_id=" not in line and "run_id=" not in line

    def test_trace_and_run_ids_are_appended(self):
        set_log_run_id("run-7")
        try:
            with trace_scope("tid-3"):
                line = self._capture("hello")
        finally:
            set_log_run_id(None)
        assert "trace_id=tid-3" in line
        assert "run_id=run-7" in line
