"""Tests for golden-number drift and perf-regression comparison."""

import math

import pytest

from repro.errors import ValidationError
from repro.provenance.drift import (
    GOLDEN_ARTIFACTS,
    Tolerance,
    compare_bench_entries,
    compare_golden,
    compare_runs,
    flatten_scalars,
    golden_numbers,
)
from repro.provenance.manifest import SCHEMA_VERSION, RunManifest


def _manifest(run_id, golden=None, engine=None, schema=SCHEMA_VERSION):
    return RunManifest(
        run_id=run_id,
        schema_version=schema,
        command="export",
        argv=[],
        created_at="2026-08-05T12:00:00+0000",
        created_unix=1000.0,
        git={"sha": "abc", "dirty": False},
        environment={},
        config_hashes={},
        input_hashes={},
        golden=dict(golden or {}),
        engine=dict(engine or {}),
    )


class TestFlatten:
    def test_nested_paths(self):
        payload = {"a": {"b": [1, {"c": 2.5}]}, "d": 3}
        assert flatten_scalars(payload) == {
            "a.b.0": 1.0,
            "a.b.1.c": 2.5,
            "d": 3.0,
        }

    def test_bools_and_strings_skipped(self):
        assert flatten_scalars({"flag": True, "label": "x", "v": 1}) == {
            "v": 1.0
        }

    def test_prefix(self):
        assert flatten_scalars({"x": 1}, "fig13") == {"fig13.x": 1.0}

    def test_golden_numbers_filters_to_golden_artifacts(self):
        payloads = {"fig13": {"x": 1}, "table1": {"y": 2}}
        numbers = golden_numbers(payloads)
        assert numbers == {"fig13.x": 1.0}
        assert "table1" not in GOLDEN_ARTIFACTS


class TestTolerance:
    def test_exact_equal_passes(self):
        assert Tolerance().allows(1.0, 1.0)
        assert Tolerance().allows(math.inf, math.inf)
        assert Tolerance().allows(math.nan, math.nan)

    def test_nonfinite_mismatch_fails(self):
        assert not Tolerance().allows(math.inf, 1.0)
        assert not Tolerance().allows(math.nan, 1.0)

    def test_rel_tolerance(self):
        assert Tolerance(rel=1e-6).allows(1.0, 1.0 + 1e-8)
        assert not Tolerance(rel=1e-6).allows(1.0, 1.0 + 1e-3)


class TestCompareRuns:
    def test_identical_runs_zero_drift(self):
        # The issue's core invariant: same golden map -> clean report.
        golden = {"table5.0.x": 1.5, "fig13.runtime.0": 0.25}
        report = compare_runs(_manifest("a", golden), _manifest("b", golden))
        assert report.clean
        assert report.compared == 2
        assert not report.drifted and not report.added and not report.removed
        assert "zero drift" in report.describe()

    def test_perturbed_quantity_flagged_by_name(self):
        golden_a = {"table5.0.x": 1.5, "fig13.runtime.0": 0.25}
        golden_b = {"table5.0.x": 1.5, "fig13.runtime.0": 0.50}
        report = compare_runs(
            _manifest("a", golden_a), _manifest("b", golden_b)
        )
        assert not report.clean
        (drift,) = report.drifted
        assert drift.name == "fig13.runtime.0"
        assert drift.value_a == 0.25 and drift.value_b == 0.5
        assert "fig13.runtime.0" in drift.describe()

    def test_added_and_removed_quantities(self):
        report = compare_runs(
            _manifest("a", {"x": 1.0, "gone": 2.0}),
            _manifest("b", {"x": 1.0, "new": 3.0}),
        )
        assert report.added == ("new",)
        assert report.removed == ("gone",)
        assert not report.clean

    def test_schema_mismatch_refused(self):
        good = _manifest("a", {"x": 1.0})
        bad = _manifest("b", {"x": 1.0}, schema=SCHEMA_VERSION + 1)
        with pytest.raises(ValidationError, match="schema_version"):
            compare_runs(good, bad)

    def test_perf_elapsed_regression_flagged(self):
        engine_a = {"stats": {"elapsed_s": 1.0}}
        engine_b = {"stats": {"elapsed_s": 2.0}}
        report = compare_runs(
            _manifest("a", engine=engine_a), _manifest("b", engine=engine_b)
        )
        (flag,) = report.perf
        assert flag.metric == "elapsed_s"
        assert flag.regressed
        assert report.perf_regressed
        assert report.clean  # perf noise never counts as golden drift

    def test_perf_within_threshold_not_flagged(self):
        engine_a = {"stats": {"elapsed_s": 1.0}}
        engine_b = {"stats": {"elapsed_s": 1.2}}
        report = compare_runs(
            _manifest("a", engine=engine_a), _manifest("b", engine=engine_b)
        )
        assert not report.perf_regressed

    def test_cache_hit_rate_drop_flagged(self):
        engine_a = {"stats": {"elapsed_s": 1.0, "cache_hits": 9, "cache_misses": 1}}
        engine_b = {"stats": {"elapsed_s": 1.0, "cache_hits": 5, "cache_misses": 5}}
        report = compare_runs(
            _manifest("a", engine=engine_a), _manifest("b", engine=engine_b)
        )
        rate = {flag.metric: flag for flag in report.perf}["cache_hit_rate"]
        assert rate.regressed

    def test_runs_without_engine_stats_have_no_perf_flags(self):
        report = compare_runs(_manifest("a"), _manifest("b"))
        assert report.perf == ()


class TestCompareGolden:
    def test_tolerance_respected(self):
        compared, drifted, added, removed = compare_golden(
            {"x": 1.0}, {"x": 1.0 + 1e-13}
        )
        assert compared == 1
        assert not drifted  # within the default abs tolerance


class TestBenchEntries:
    def _entry(self, elapsed, memo_hits=8, memo_misses=2):
        return {
            "schema_version": SCHEMA_VERSION,
            "stats": {
                "elapsed_s": elapsed,
                "memo_hits": memo_hits,
                "memo_misses": memo_misses,
            },
        }

    def test_regression_flagged(self):
        flags = compare_bench_entries(self._entry(1.0), self._entry(3.0))
        by_metric = {flag.metric: flag for flag in flags}
        assert by_metric["elapsed_s"].regressed
        assert not by_metric["memo_hit_rate"].regressed

    def test_memo_hit_rate_drop_flagged(self):
        flags = compare_bench_entries(
            self._entry(1.0, memo_hits=9, memo_misses=1),
            self._entry(1.0, memo_hits=1, memo_misses=9),
        )
        by_metric = {flag.metric: flag for flag in flags}
        assert by_metric["memo_hit_rate"].regressed

    def test_pre_provenance_entries_refused(self):
        with pytest.raises(ValidationError):
            compare_bench_entries({"stats": {}}, self._entry(1.0))

    def test_entries_without_stats_refused(self):
        with pytest.raises(ValidationError, match="stats"):
            compare_bench_entries(
                {"schema_version": SCHEMA_VERSION},
                {"schema_version": SCHEMA_VERSION},
            )
