"""Tests for run manifests and the append-only run ledger."""

import json

import pytest

from repro.errors import ValidationError
from repro.provenance.manifest import (
    SCHEMA_VERSION,
    RunLedger,
    RunManifest,
    capture,
    git_state,
    input_fingerprints,
    model_fingerprint,
)


def _mini_manifest(run_id="r1", created_unix=1000.0, **overrides):
    payload = dict(
        run_id=run_id,
        schema_version=SCHEMA_VERSION,
        command="export",
        argv=["export", "--out", "out"],
        created_at="2026-08-05T12:00:00+0000",
        created_unix=created_unix,
        git={"sha": "abc123", "dirty": False},
        environment={"python": "3.11.0"},
        config_hashes={"cmos_model": "0" * 64},
        input_hashes={"reference_database": "1" * 64},
    )
    payload.update(overrides)
    return RunManifest(**payload)


class TestCapture:
    def test_capture_fills_identity(self):
        manifest = capture("export", argv=["export", "--out", "x"])
        assert manifest.schema_version == SCHEMA_VERSION
        assert manifest.command == "export"
        assert manifest.argv == ["export", "--out", "x"]
        assert manifest.run_id
        assert "python" in manifest.environment
        assert "numpy" in manifest.environment
        assert manifest.config_hashes["cmos_model"]
        assert "reference_database" in manifest.input_hashes
        assert any(k.startswith("study:") for k in manifest.input_hashes)

    def test_run_ids_are_unique(self):
        a = capture("export")
        b = capture("export")
        assert a.run_id != b.run_id

    def test_git_state_in_checkout(self):
        state = git_state("/root/repo")
        assert state["sha"] is None or len(state["sha"]) == 40

    def test_git_state_outside_checkout(self, tmp_path):
        state = git_state(tmp_path)
        assert state == {"sha": None, "dirty": None}

    def test_model_fingerprint_stable_and_sensitive(self, paper_model):
        from repro.cmos.model import CmosPotentialModel

        assert model_fingerprint(paper_model) == model_fingerprint(paper_model)
        refit = CmosPotentialModel.reference()
        assert model_fingerprint(paper_model) != model_fingerprint(refit)

    def test_input_fingerprints_stable(self):
        assert input_fingerprints() == input_fingerprints()


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        manifest = _mini_manifest(
            golden={"table5.0.x": 1.5}, checks=[{"ok": True}]
        )
        clone = RunManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert clone == manifest

    def test_wrong_schema_version_refused(self):
        payload = _mini_manifest().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValidationError):
            RunManifest.from_dict(payload)

    def test_missing_schema_version_refused(self):
        payload = _mini_manifest().to_dict()
        del payload["schema_version"]
        with pytest.raises(ValidationError):
            RunManifest.from_dict(payload)

    def test_missing_required_field_refused(self):
        payload = _mini_manifest().to_dict()
        del payload["input_hashes"]
        with pytest.raises(ValidationError):
            RunManifest.from_dict(payload)

    def test_unknown_fields_ignored(self):
        payload = _mini_manifest().to_dict()
        payload["future_field"] = {"x": 1}
        manifest = RunManifest.from_dict(payload)
        assert not hasattr(manifest, "future_field")

    def test_non_dict_payload_refused(self):
        with pytest.raises(ValidationError):
            RunManifest.from_dict(["not", "a", "dict"])

    def test_artifact_block_subset(self):
        manifest = _mini_manifest(golden={"x": 1.0}, stages=[{"stage": "s"}])
        block = manifest.artifact_block()
        assert block["run_id"] == manifest.run_id
        assert block["git"]["sha"] == "abc123"
        assert "golden" not in block  # ledger-only payload stays out
        assert "stages" not in block


class TestLedger:
    def test_record_and_get(self, tmp_path):
        ledger = RunLedger(tmp_path)
        manifest = _mini_manifest()
        path = ledger.record(manifest)
        assert path == tmp_path / "r1" / "manifest.json"
        assert ledger.get("r1") == manifest
        assert "r1" in ledger

    def test_list_oldest_first(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_mini_manifest("new", created_unix=2000.0))
        ledger.record(_mini_manifest("old", created_unix=1000.0))
        assert ledger.ids() == ["old", "new"]
        assert ledger.latest().run_id == "new"

    def test_rerecord_same_run_updates_in_place(self, tmp_path):
        ledger = RunLedger(tmp_path)
        manifest = _mini_manifest()
        ledger.record(manifest)
        manifest.golden["table5.0.x"] = 2.0
        ledger.record(manifest)
        assert len(ledger) == 1
        assert ledger.get("r1").golden == {"table5.0.x": 2.0}

    def test_get_unknown_run(self, tmp_path):
        with pytest.raises(ValidationError, match="no run"):
            RunLedger(tmp_path).get("missing")

    def test_get_corrupt_entry(self, tmp_path):
        (tmp_path / "bad").mkdir(parents=True)
        (tmp_path / "bad" / "manifest.json").write_text("{broken")
        with pytest.raises(ValidationError, match="unreadable"):
            RunLedger(tmp_path).get("bad")

    def test_list_skips_corrupt_entries(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_mini_manifest("good"))
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "manifest.json").write_text("{broken")
        assert ledger.ids() == ["good"]

    def test_invalid_run_ids_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for bad in ("", ".", "..", "a/b"):
            with pytest.raises(ValidationError):
                ledger.get(bad)

    def test_prune_keeps_newest(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for index in range(4):
            ledger.record(
                _mini_manifest(f"r{index}", created_unix=1000.0 + index)
            )
        removed = ledger.prune(2)
        assert removed == ["r0", "r1"]
        assert ledger.ids() == ["r2", "r3"]

    def test_prune_negative_refused(self, tmp_path):
        with pytest.raises(ValidationError):
            RunLedger(tmp_path).prune(-1)

    def test_empty_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "nowhere")
        assert ledger.list() == []
        assert len(ledger) == 0
        with pytest.raises(ValidationError, match="empty"):
            ledger.latest()

    def test_env_var_controls_default_root(self, monkeypatch, tmp_path):
        from repro.provenance.manifest import default_runs_dir

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert default_runs_dir() == tmp_path / "elsewhere"
        assert RunLedger().root == tmp_path / "elsewhere"
