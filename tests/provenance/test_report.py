"""Tests for markdown/HTML rendering of run and drift reports."""

import pytest

from repro.provenance.drift import compare_runs
from repro.provenance.manifest import SCHEMA_VERSION, RunLedger, RunManifest
from repro.provenance.report import (
    drift_document,
    format_drift_report,
    format_run_report,
    render_html,
    render_markdown,
    run_document,
)


def _manifest(run_id, created_unix=1000.0, elapsed=1.0, **overrides):
    payload = dict(
        run_id=run_id,
        schema_version=SCHEMA_VERSION,
        command="export",
        argv=["export", "--out", "out"],
        created_at="2026-08-05T12:00:00+0000",
        created_unix=created_unix,
        git={"sha": "abc123def456", "dirty": False},
        environment={"python": "3.11.0", "numpy": "1.26.0"},
        config_hashes={"cmos_model": "0" * 64},
        input_hashes={"reference_database": "1" * 64},
        elapsed_s=elapsed,
        golden={"table5.0.x": 1.5},
        engine={"jobs": 2, "stats": {"elapsed_s": elapsed}},
        stages=[{"stage": "sweep", "calls": 1, "total_s": "1.0",
                 "mean_ms": "1000.0", "share": "100.0%"}],
        checks=[{"subsystem": "csr", "name": "eq2", "ok": True, "detail": "ok"}],
    )
    payload.update(overrides)
    return RunManifest(**payload)


class TestRunReport:
    def test_markdown_sections(self):
        text = format_run_report(_manifest("r1"), fmt="md")
        assert text.startswith("# Run report: r1")
        for heading in (
            "## Run", "## Environment", "## Configuration & input hashes",
            "## Engine", "## Per-stage time", "## Check outcomes",
            "## Golden numbers",
        ):
            assert heading in text
        assert "abc123def456" in text

    def test_html_is_escaped_page(self):
        manifest = _manifest("r1", environment={"python": "<3.11>"})
        page = format_run_report(manifest, fmt="html")
        assert page.lstrip().startswith("<!DOCTYPE html>")
        assert "&lt;3.11&gt;" in page
        assert "<3.11>" not in page

    def test_history_sparkline_needs_two_runs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_manifest("r1", created_unix=1000.0, elapsed=1.0))
        one = format_run_report(ledger.get("r1"), ledger, fmt="md")
        assert "Perf history" not in one
        ledger.record(_manifest("r2", created_unix=2000.0, elapsed=2.0))
        two = format_run_report(ledger.get("r2"), ledger, fmt="md")
        assert "Perf history" in two
        assert "elapsed_s over 2 `export` runs" in two

    def test_unknown_format_refused(self):
        with pytest.raises(ValueError, match="format"):
            format_run_report(_manifest("r1"), fmt="pdf")


class TestDriftReportRendering:
    def test_clean_compare_says_zero_drift(self):
        a, b = _manifest("a"), _manifest("b")
        report = compare_runs(a, b)
        text = format_drift_report(report, a, b, fmt="md")
        assert "zero drift" in text
        assert "## Provenance delta" in text

    def test_drifted_quantity_in_table(self):
        a = _manifest("a")
        b = _manifest("b", golden={"table5.0.x": 9.9})
        report = compare_runs(a, b)
        text = format_drift_report(report, a, b, fmt="md")
        assert "DRIFT" in text
        assert "| table5.0.x |" in text
        html = format_drift_report(report, a, b, fmt="html")
        assert "table5.0.x" in html

    def test_documents_share_content_across_formats(self):
        a, b = _manifest("a"), _manifest("b", golden={"table5.0.x": 9.9})
        doc = drift_document(compare_runs(a, b), a, b)
        md = render_markdown(doc)
        page = render_html(doc)
        for token in ("table5.0.x", "Provenance delta", "Golden numbers"):
            assert token in md and token in page


class TestSparkline:
    def test_monotone_ramp(self):
        from repro.reporting.ascii_plots import sparkline

        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_flat_series(self):
        from repro.reporting.ascii_plots import sparkline

        assert set(sparkline([2.0, 2.0, 2.0])) <= {" ", "."}

    def test_non_finite_marked(self):
        from repro.reporting.ascii_plots import sparkline

        assert "?" in sparkline([1.0, float("nan"), 2.0])

    def test_width_resampling(self):
        from repro.reporting.ascii_plots import sparkline

        assert len(sparkline(list(range(100)), width=10)) <= 10

    def test_empty(self):
        from repro.reporting.ascii_plots import sparkline

        assert sparkline([]) == ""
