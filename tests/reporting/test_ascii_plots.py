"""Tests for the ASCII plotting layer."""

import pytest

from repro.reporting.ascii_plots import (
    MARKERS,
    ascii_scatter,
    plot_csr_series,
    plot_frontier,
    plot_runtime_power,
)


class TestAsciiScatter:
    def test_basic_plot_structure(self):
        text = ascii_scatter(
            {"a": [(0.0, 0.0), (1.0, 1.0)]},
            title="demo", x_label="xs", y_label="ys",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "legend: o a" in lines[-1]
        assert any("|" in line for line in lines)
        assert "xs" in text and "ys" in text

    def test_markers_assigned_in_order(self):
        text = ascii_scatter(
            {"first": [(0, 0)], "second": [(1, 1)], "third": [(2, 2)]}
        )
        assert f"{MARKERS[0]} first" in text
        assert f"{MARKERS[1]} second" in text
        assert f"{MARKERS[2]} third" in text

    def test_corners_are_plotted(self):
        text = ascii_scatter({"a": [(0.0, 0.0), (10.0, 10.0)]}, width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert "o" in rows[0]    # max y on top row
        assert "o" in rows[-1]   # min y on bottom row

    def test_log_axes_ticks(self):
        text = ascii_scatter(
            {"a": [(1.0, 1.0), (1000.0, 100.0)]}, log_x=True, log_y=True
        )
        assert "1e3" in text
        assert "1e0" in text

    def test_log_axis_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"a": [(0.0, 1.0)]}, log_x=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})
        with pytest.raises(ValueError):
            ascii_scatter({"a": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({"a": [(0, 0)]}, width=5, height=3)

    def test_degenerate_single_point(self):
        text = ascii_scatter({"a": [(1.0, 1.0)]})
        assert "o" in text


class TestFigurePlots:
    def test_plot_csr_series(self, paper_model):
        from repro.studies import video_decoders

        series = video_decoders.study().performance_series(paper_model)
        text = plot_csr_series(series, "video decoders")
        assert "gain" in text and "CSR" in text

    def test_plot_frontier(self):
        points = [(1.0, 1.0), (2.0, 3.0), (4.0, 2.0)]
        frontier = [(1.0, 1.0), (2.0, 3.0)]
        text = plot_frontier(points, frontier, "toy frontier")
        assert "frontier" in text

    def test_plot_runtime_power(self):
        from repro.accel.sweep import default_design_grid, sweep
        from repro.workloads import trd

        result = sweep(
            trd.build(n=8),
            default_design_grid(
                nodes=(45.0, 5.0), partitions=(1, 8), simplifications=(1,)
            ),
        )
        text = plot_runtime_power(result.reports)
        assert "45nm" in text and "5nm" in text


class TestPlotCli:
    @pytest.mark.parametrize("figure", ["fig1", "fig4", "fig9"])
    def test_plot_command(self, capsys, figure):
        from repro.cli import main

        assert main(["plot", figure]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
