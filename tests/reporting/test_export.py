"""Tests for JSON artifact export and its provenance envelopes."""

import json

import pytest

from repro.provenance.manifest import SCHEMA_VERSION
from repro.reporting.export import (
    artifact_builders,
    artifact_registry,
    export_all,
    export_artifact,
    tech_artifact_builders,
)


def _load(path):
    return json.loads(path.read_text())


class TestExport:
    def test_builder_registry_covers_all_artifacts(self):
        names = set(artifact_builders())
        assert {
            "table1", "table2", "table3", "table4", "table5",
            "fig1", "fig3a", "fig3b", "fig3c", "fig3d", "fig4", "fig5",
            "fig6_7", "fig8", "fig9", "fig13", "fig14", "fig15_16",
        } == names

    def test_export_single_artifact(self, tmp_path, paper_model):
        path = export_artifact("table5", tmp_path, paper_model)
        envelope = _load(path)
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert len(envelope["data"]) == 4

    def test_export_unknown_artifact(self, tmp_path):
        with pytest.raises(ValueError):
            export_artifact("fig99", tmp_path)

    def test_export_subset(self, tmp_path, paper_model):
        paths = export_all(
            tmp_path, paper_model, names=["fig1", "fig3a", "table4"]
        )
        assert set(paths) == {"fig1", "fig3a", "table4"}
        for path in paths.values():
            assert path.exists()
            json.loads(path.read_text())  # valid JSON

    def test_fig3d_tuple_keys_serialised(self, tmp_path, paper_model):
        path = export_artifact("fig3d", tmp_path, paper_model)
        payload = _load(path)["data"]
        assert isinstance(payload, dict)
        assert all(isinstance(k, str) for k in payload)

    def test_directory_created(self, tmp_path, paper_model):
        nested = tmp_path / "a" / "b"
        path = export_artifact("table1", nested, paper_model)
        assert path.parent == nested


class TestTechArtifacts:
    """Per-technology artifact families resolve through the one registry."""

    def test_registry_extends_builders_with_tech_families(self):
        from repro.tech import backend_names

        registry = set(artifact_registry())
        assert set(artifact_builders()) <= registry
        for tech in backend_names():
            if tech == "cmos":
                continue
            assert set(tech_artifact_builders(tech)) <= registry
        # cmos's per-tech numbers ARE the base artifacts: no duplicates.
        assert "fig15_16_cmos" not in registry

    def test_tech_family_has_five_artifacts(self):
        assert set(tech_artifact_builders("tfet")) == {
            "fig15_16_tfet",
            "table5_tfet",
            "csr_tfet",
            "tech_tfet",
            "tech_delta_tfet",
        }

    def test_only_per_tech_name_works_without_tech_flag(self, tmp_path):
        paths = export_all(tmp_path, names=["tech_delta_finfet"])
        payload = _load(paths["tech_delta_finfet"])["data"]
        assert payload["tech"] == "finfet"
        assert payload["rows"]

    def test_unknown_name_error_lists_per_tech_names(self, tmp_path):
        with pytest.raises(ValueError, match="fig15_16_tfet"):
            export_all(tmp_path, names=["fig99"])

    def test_tech_cmos_is_bit_identical_to_default(self, tmp_path, paper_model):
        # Cheap subset: the default selection for tech=None vs tech="cmos"
        # must be the same names backed by the same builders.
        assert sorted(artifact_builders(paper_model, tech="cmos")) == sorted(
            artifact_builders(paper_model)
        )
        plain = export_artifact("table5", tmp_path / "plain", paper_model)
        via_tech = export_all(
            tmp_path / "tech", paper_model, names=["table5"], tech="cmos"
        )["table5"]
        assert _load(plain)["data"] == _load(via_tech)["data"]

    def test_tech_selects_the_backend_family(self, tmp_path):
        paths = export_all(tmp_path, tech="tfet")
        assert set(paths) == set(tech_artifact_builders("tfet"))

    def test_manifest_records_backend_and_param_hash(self, tmp_path):
        from repro.tech import get_backend

        paths = export_all(tmp_path, names=["tech_delta_tfet"], tech="tfet")
        block = _load(paths["tech_delta_tfet"])["manifest"]
        assert block["config_hashes"]["tech_backend"] == "tfet"
        assert block["config_hashes"]["tech_params"] == (
            get_backend("tfet").param_hash()
        )

    def test_tech_artifacts_carry_golden_numbers(self, tmp_path):
        from repro.provenance.drift import golden_numbers, is_golden_artifact
        from repro.provenance.manifest import capture

        assert is_golden_artifact("fig15_16_tfet")
        assert is_golden_artifact("tech_delta_chiplet")
        manifest = capture("export", tech="tfet")
        paths = export_all(
            tmp_path, names=["fig15_16_tfet"], manifest=manifest
        )
        payload = _load(paths["fig15_16_tfet"])["data"]
        assert manifest.golden
        assert manifest.golden == golden_numbers({"fig15_16_tfet": payload})


class TestProvenanceEnvelope:
    """Every artifact carries the run's manifest block (issue acceptance)."""

    def test_manifest_block_fields(self, tmp_path, paper_model):
        path = export_artifact("table5", tmp_path, paper_model)
        block = _load(path)["manifest"]
        assert block["schema_version"] == SCHEMA_VERSION
        assert block["command"] == "export"
        assert "sha" in block["git"] and "dirty" in block["git"]
        assert block["input_hashes"]  # content hashes of the datasheets
        assert all(
            isinstance(v, str) and len(v) == 64
            for v in block["input_hashes"].values()
        )
        assert block["config_hashes"]["cmos_model"]
        assert isinstance(block["metrics"], dict)
        assert block["environment"]["python"]

    def test_same_block_in_every_artifact(self, tmp_path, paper_model):
        paths = export_all(tmp_path, paper_model, names=["table5", "fig3a"])
        blocks = [_load(p)["manifest"] for p in paths.values()]
        assert blocks[0] == blocks[1]
        assert blocks[0]["run_id"]

    def test_export_records_ledger_entry(self, tmp_path, paper_model):
        from repro.provenance.manifest import RunLedger

        ledger = RunLedger(tmp_path / "ledger")
        paths = export_all(
            tmp_path / "out", paper_model, names=["table5"], ledger=ledger
        )
        run_id = _load(paths["table5"])["manifest"]["run_id"]
        manifest = ledger.get(run_id)
        assert manifest.golden  # golden numbers captured for drift
        assert any(name.startswith("table5.") for name in manifest.golden)

    def test_golden_numbers_cover_wall_scalars(self, tmp_path, paper_model):
        from repro.provenance.manifest import RunLedger

        ledger = RunLedger(tmp_path / "ledger")
        export_all(
            tmp_path / "out", paper_model, names=["fig15_16"], ledger=ledger
        )
        manifest = ledger.latest()
        assert any("projected_log" in name for name in manifest.golden)
