"""Tests for JSON artifact export."""

import json

import pytest

from repro.reporting.export import artifact_builders, export_all, export_artifact


class TestExport:
    def test_builder_registry_covers_all_artifacts(self):
        names = set(artifact_builders())
        assert {
            "table1", "table2", "table3", "table4", "table5",
            "fig1", "fig3a", "fig3b", "fig3c", "fig3d", "fig4", "fig5",
            "fig6_7", "fig8", "fig9", "fig13", "fig14", "fig15_16",
        } == names

    def test_export_single_artifact(self, tmp_path, paper_model):
        path = export_artifact("table5", tmp_path, paper_model)
        payload = json.loads(path.read_text())
        assert len(payload) == 4

    def test_export_unknown_artifact(self, tmp_path):
        with pytest.raises(ValueError):
            export_artifact("fig99", tmp_path)

    def test_export_subset(self, tmp_path, paper_model):
        paths = export_all(
            tmp_path, paper_model, names=["fig1", "fig3a", "table4"]
        )
        assert set(paths) == {"fig1", "fig3a", "table4"}
        for path in paths.values():
            assert path.exists()
            json.loads(path.read_text())  # valid JSON

    def test_fig3d_tuple_keys_serialised(self, tmp_path, paper_model):
        path = export_artifact("fig3d", tmp_path, paper_model)
        payload = json.loads(path.read_text())
        assert isinstance(payload, dict)
        assert all(isinstance(k, str) for k in payload)

    def test_directory_created(self, tmp_path, paper_model):
        nested = tmp_path / "a" / "b"
        path = export_artifact("table1", nested, paper_model)
        assert path.parent == nested
