"""Tests for figure-series regeneration."""

import pytest

from repro.reporting import figures


class TestCmosFigures:
    def test_fig3a_panels(self):
        series = figures.fig3a_device_scaling()
        assert len(series) == 5
        for panel in series.values():
            assert len(panel) == 6

    def test_fig3b_equation_and_curve(self, paper_model):
        data = figures.fig3b_transistor_density(paper_model)
        assert data["coefficient"] == pytest.approx(4.99e9)
        assert data["curve"][30.0] > data["curve"][0.01]

    def test_fig3c_four_eras(self, paper_model):
        data = figures.fig3c_tdp_budget(paper_model)
        assert len(data["fits"]) == 4
        for curve in data["curves"].values():
            values = [curve[t] for t in sorted(curve)]
            assert values == sorted(values)  # more TDP, more budget

    def test_fig3d_grid(self, paper_model):
        grid = figures.fig3d_chip_gains(paper_model)
        assert len(grid) == 6 * 6 * 4
        assert grid[(45.0, 25.0, None)]["throughput"] == pytest.approx(1.0)


class TestStudyFigures:
    def test_fig1_rows(self, paper_model):
        rows = figures.fig1_bitcoin_evolution(paper_model)
        assert len(rows) == 12
        assert rows[0]["performance"] == pytest.approx(1.0)
        assert rows[-1]["performance"] > 100

    def test_fig4_sections(self, paper_model):
        data = figures.fig4_video_decoders(paper_model)
        assert set(data) == {"performance", "budget", "efficiency"}
        assert len(data["performance"]) == 12
        # sorted ascending like the figure
        gains = [r["gain"] for r in data["performance"]]
        assert gains == sorted(gains)

    def test_fig5_all_apps(self, paper_model):
        data = figures.fig5_gpu_frame_rates(paper_model)
        assert len(data) == 5
        for app_data in data.values():
            assert len(app_data["performance"]) >= 10

    def test_fig6_7_rows(self, paper_model):
        rows = figures.fig6_7_architecture_scaling(paper_model)
        assert len(rows) == 10
        tesla = next(r for r in rows if r["architecture"] == "Tesla")
        assert tesla["gain_vs_tesla"] == pytest.approx(1.0)

    def test_fig8_both_models(self, paper_model):
        data = figures.fig8_fpga_cnn(paper_model)
        assert set(data) == {"alexnet", "vgg16"}
        assert len(data["alexnet"]["utilization"]) == 11

    def test_fig9_sections(self, paper_model):
        data = figures.fig9_bitcoin_platforms(paper_model)
        assert len(data["performance"]) == 21
        assert max(r["gain"] for r in data["performance"]) > 1e5


class TestDseFigures:
    def test_fig13_reduced_sweep(self):
        rows = figures.fig13_stencil_sweep(
            partitions=(1, 16, 256),
            simplifications=(1, 9),
            nodes=(45.0, 5.0),
        )
        assert len(rows) == 2 * 3 * 2
        # CMOS advancement reduces power at equal design point.
        by_key = {
            (r["node_nm"], r["partition"], r["simplification"]): r for r in rows
        }
        assert by_key[(5.0, 16, 1)]["power_w"] < by_key[(45.0, 16, 1)]["power_w"]
        # Partitioning improves runtime.
        assert by_key[(45.0, 256, 1)]["runtime_s"] < by_key[(45.0, 1, 1)]["runtime_s"]

    def test_fig14_reduced(self):
        rows = figures.fig14_gain_attribution(
            metric="throughput",
            workload_abbrevs=("TRD", "RED"),
            partitions=(1, 8, 64),
            simplifications=(1, 5),
        )
        assert len(rows) == 2
        for row in rows:
            assert row["total_gain"] > 1
            assert sum(row["shares"].values()) == pytest.approx(100.0)


class TestWallFigure:
    def test_fig15_16_rows(self, paper_model):
        rows = figures.fig15_16_projections(paper_model)
        assert len(rows) == 8
        for row in rows:
            assert row["projected_linear"] >= row["current_best"]
            low, high = row["headroom"]
            assert low <= high
