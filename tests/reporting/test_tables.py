"""Tests for table regeneration and rendering."""


from repro.dfg.analysis import analyze
from repro.reporting.tables import (
    render_rows,
    table1_specialization_concepts,
    table2_concept_limits,
    table3_sweep_parameters,
    table4_applications,
    table5_wall_parameters,
)
from repro.workloads import trd


class TestRender:
    def test_empty(self):
        assert render_rows([]) == "(empty)"

    def test_alignment_and_header(self):
        text = render_rows([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_column_subset(self):
        text = render_rows([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_float_formatting(self):
        text = render_rows([{"x": 3.14159265}])
        assert "3.142" in text


class TestTables:
    def test_table1_has_nine_concept_cells(self):
        rows = table1_specialization_concepts()
        assert len(rows) == 9
        components = {r["component"] for r in rows}
        assert components == {"Memory", "Communication", "Computation"}

    def test_table2_on_real_kernel(self):
        stats = analyze(trd.build(n=8).dfg)
        rows = table2_concept_limits(stats)
        assert len(rows) == 9
        for row in rows:
            assert row["time"] > 0

    def test_table3_parameters(self):
        rows = table3_sweep_parameters()
        assert len(rows) == 3
        assert "524288" in rows[0]["values"]
        assert rows[2]["values"].startswith("45")

    def test_table4_sixteen_rows(self):
        rows = table4_applications()
        assert len(rows) == 16
        assert {"application", "abbrev", "domain"} <= set(rows[0])

    def test_table5_four_domains(self):
        rows = table5_wall_parameters()
        assert len(rows) == 4
        video = next(r for r in rows if r["domain"] == "video_decoding")
        assert video["tdp_w"] == 7.0
        assert video["min_die_mm2"] == 1.68
