"""Fixtures for the serving-layer tests.

The module-scoped ``server`` fixture starts one in-process server (on an
ephemeral port, batching on, no rate limit) shared by the endpoint tests;
lifecycle tests that need special configuration start their own via
:func:`make_server`.
"""

from __future__ import annotations

import http.client
import json
import os
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.serve import ServeConfig, ServerHandle


class ServeClient:
    """Minimal JSON-over-HTTP test client against a ServerHandle."""

    def __init__(self, port: int, client_id: str = "test"):
        self.port = port
        self.client_id = client_id

    def request(
        self,
        method: str,
        target: str,
        body: Optional[Any] = None,
        raw: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=120)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(
                method, target, body=payload,
                headers={"X-Client-Id": self.client_id, **(headers or {})},
            )
            response = conn.getresponse()
            content = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            data = content.decode() if raw else json.loads(content)
            return response.status, data, headers
        finally:
            conn.close()

    def get(self, target: str, **kwargs):
        return self.request("GET", target, **kwargs)

    def post(self, target: str, body: Any, **kwargs):
        return self.request("POST", target, body=body, **kwargs)

    def delete(self, target: str, **kwargs):
        return self.request("DELETE", target, **kwargs)


def make_server(**overrides) -> ServerHandle:
    """Start a server on an ephemeral port; caller must ``.stop()`` it."""
    config = ServeConfig(port=0, **overrides)
    return ServerHandle(config).start()


@pytest.fixture(scope="module")
def server_runs_dir(tmp_path_factory):
    """A runs dir that outlives the function-scoped autouse isolation."""
    return tmp_path_factory.mktemp("serve-runs")


@pytest.fixture(scope="module")
def server(server_runs_dir):
    """One shared batching server for the read-mostly endpoint tests."""
    previous = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(server_runs_dir)
    handle = make_server()
    try:
        yield handle
    finally:
        handle.stop()
        if previous is None:
            os.environ.pop("REPRO_RUNS_DIR", None)
        else:
            os.environ["REPRO_RUNS_DIR"] = previous


@pytest.fixture(scope="module")
def client(server) -> ServeClient:
    return ServeClient(server.port)
