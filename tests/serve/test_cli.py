"""CLI-facing satellites: ``--version``, ``serve`` wiring, ``export --only``."""

from __future__ import annotations

import re

import pytest

from repro.cli import EXIT_ERROR, build_parser, main


class TestVersionFlag:
    def test_version_prints_package_version_and_sha(self, capsys):
        import repro

        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out.startswith(f"repro {repro.__version__} (")

    def test_version_string_is_single_sourced_with_pyproject(self):
        import repro
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        text = pyproject.read_text()
        # pyproject must not pin its own version literal...
        assert re.search(r'^version\s*=\s*"', text, re.M) is None
        # ...and must read it from the package attribute instead.
        assert 'version = { attr = "repro.__version__" }' in text
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_version_string_mentions_git_state(self):
        import repro

        line = repro.version_string()
        assert line.startswith(f"repro {repro.__version__} (")
        assert re.search(r"\(([0-9a-f]{12}(, dirty)?|no-git)\)$", line)


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.port == 8080
        assert args.host == "127.0.0.1"
        assert not args.no_batching
        assert args.rate_limit == 0.0
        assert args.workers == 1
        assert args.max_inflight == 64

    def test_serve_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--jobs", "2", "--no-batching",
            "--batch-window-ms", "5", "--rate-limit", "10",
            "--response-cache", "0", "--drain-timeout", "3",
            "--workers", "4", "--max-inflight", "8",
        ])
        assert args.port == 0 and args.jobs == 2
        assert args.no_batching
        assert args.batch_window_ms == 5.0
        assert args.rate_limit == 10.0
        assert args.workers == 4
        assert args.max_inflight == 8


class TestExportOnlyValidation:
    def test_unknown_artifact_exits_2_listing_valid_names(self, tmp_path, capsys):
        code = main(["export", "--out", str(tmp_path), "--only", "fig99"])
        assert code == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "fig99" in err
        assert "fig3d" in err and "table5" in err  # valid names are listed

    def test_multiple_unknown_names_all_reported(self, tmp_path, capsys):
        code = main(
            ["export", "--out", str(tmp_path), "--only", "fig99,bogus,table5"]
        )
        assert code == EXIT_ERROR
        err = capsys.readouterr().err
        assert "'bogus'" in err and "'fig99'" in err

    def test_empty_selection_is_rejected(self, tmp_path, capsys):
        code = main(["export", "--out", str(tmp_path), "--only", " , "])
        assert code == EXIT_ERROR
        assert "no artifacts selected" in capsys.readouterr().err

    def test_valid_subset_still_exports(self, tmp_path, capsys):
        code = main(["export", "--out", str(tmp_path), "--only", "table5"])
        assert code == 0
        assert (tmp_path / "table5.json").exists()
