"""Flight recorder, trace propagation, and the ``/debug/*`` surface.

Unit tests cover the recorder ring and Chrome-trace stitching in
isolation; the live-server tests drive the shared module server and
assert the operator-facing contract: every response carries an
``X-Trace-Id`` (honoring an injected ``traceparent``), the debug
endpoints resolve traces, and ``repro tail`` renders them.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.trace import Span
from repro.serve.app import OPS_ROUTES
from repro.serve.debug import (
    MAX_SPANS_PER_RECORD,
    FlightRecorder,
    chrome_trace,
)
from repro.serve.handlers import render_prometheus, render_prometheus_multi

import pytest

TRACE32 = "aaaabbbbccccddddeeeeffff00001111"


def make_span(name="work", start=0.0, dur=0.001, pid=100, trace_id="t"):
    return Span(
        name=name,
        start_s=start,
        duration_s=dur,
        pid=pid,
        tid=1,
        depth=0,
        attrs={},
        trace_id=trace_id,
    )


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def _fill(self, recorder, n):
        for i in range(n):
            recorder.record(
                trace_id=f"t{i}", route="r", method="GET", path=f"/{i}",
                status=200, duration_s=float(i), start_unix=float(i),
            )

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        self._fill(recorder, 5)
        assert len(recorder) == 3
        assert [r.trace_id for r in recorder.tail(10)] == ["t2", "t3", "t4"]

    def test_tail_returns_newest_oldest_first(self):
        recorder = FlightRecorder(capacity=10)
        self._fill(recorder, 5)
        assert [r.path for r in recorder.tail(2)] == ["/3", "/4"]

    def test_slowest_sorts_by_duration(self):
        recorder = FlightRecorder(capacity=10)
        self._fill(recorder, 5)
        assert [r.duration_s for r in recorder.slowest(3)] == [4.0, 3.0, 2.0]

    def test_trace_filters_by_id(self):
        recorder = FlightRecorder(capacity=10)
        self._fill(recorder, 3)
        recorder.record(
            trace_id="t1", route="other", method="GET", path="/again",
            status=200, duration_s=0.5,
        )
        rows = recorder.trace("t1")
        assert [r.path for r in rows] == ["/1", "/again"]
        assert recorder.trace("missing") == []

    def test_span_capping_keeps_the_longest(self):
        spans = [
            make_span(name=f"s{i}", start=float(i), dur=float(i))
            for i in range(MAX_SPANS_PER_RECORD + 10)
        ]
        recorder = FlightRecorder(capacity=4)
        row = recorder.record(
            trace_id="t", route="r", method="GET", path="/", status=200,
            duration_s=1.0, spans=spans,
        )
        assert len(row.spans) == MAX_SPANS_PER_RECORD
        durations = [s["duration_s"] for s in row.spans]
        assert min(durations) == 10.0  # the 10 shortest were dropped
        starts = [s["start_s"] for s in row.spans]
        assert starts == sorted(starts)  # stored in timeline order


class TestChromeTrace:
    def _record_dict(self, worker, pid, start):
        return {
            "trace_id": TRACE32,
            "route": "sweeps.get",
            "worker": worker,
            "start_unix": start,
            "spans": [
                {
                    "name": "serve.request",
                    "start_s": start,
                    "duration_s": 0.002,
                    "pid": pid,
                    "tid": 1,
                    "depth": 0,
                }
            ],
        }

    def test_multi_worker_records_get_flow_events(self):
        trace = chrome_trace(
            TRACE32,
            [self._record_dict(0, 100, 1.0), self._record_dict(1, 200, 1.001)],
        )
        events = trace["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("X") == 2
        assert phases.count("M") == 2  # one process_name per pid
        assert "s" in phases and "f" in phases
        finish = next(e for e in events if e["ph"] == "f")
        assert finish["bp"] == "e"
        assert finish["id"] == TRACE32
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"repro serve [worker 0]", "repro serve [worker 1]"}

    def test_single_record_has_no_flow_events(self):
        trace = chrome_trace(TRACE32, [self._record_dict(None, 100, 1.0)])
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert "s" not in phases and "f" not in phases
        meta = next(e for e in trace["traceEvents"] if e["ph"] == "M")
        assert meta["args"]["name"] == "repro serve [single]"

    def test_timestamps_rebase_to_earliest_span(self):
        trace = chrome_trace(
            TRACE32,
            [self._record_dict(0, 100, 5.0), self._record_dict(1, 200, 5.5)],
        )
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(ts) == 0.0
        assert max(ts) == pytest.approx(0.5e6)


class TestPrometheusHistogramRender:
    SNAP = {
        "lat.s": {
            "type": "histogram",
            "count": 3,
            "sum": 0.6,
            "min": 0.1,
            "max": 0.3,
            "buckets": {"137": 1, "141": 2},
        }
    }

    def test_histogram_family(self):
        text = render_prometheus(self.SNAP)
        assert "# TYPE repro_lat_s histogram" in text
        assert 'repro_lat_s_bucket{le="+Inf"} 3' in text
        assert "repro_lat_s_count 3" in text
        assert "repro_lat_s_sum 0.6" in text
        # Buckets are cumulative and ordered.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_s_bucket")
        ]
        assert counts == sorted(counts) and counts[-1] == 3

    def test_multi_worker_labels(self):
        text = render_prometheus_multi({0: self.SNAP, 1: self.SNAP})
        assert 'repro_lat_s_bucket{worker="0",le="+Inf"} 3' in text
        assert 'repro_lat_s_bucket{worker="1",le="+Inf"} 3' in text
        assert 'repro_lat_s_count{worker="1"} 3' in text


class TestDebugEndpoints:
    def test_debug_routes_are_ops_exempt(self):
        assert {"debug.requests", "debug.slow", "debug.trace"} <= set(OPS_ROUTES)

    def test_every_response_carries_a_minted_trace_id(self, client):
        _, _, headers = client.get("/healthz")
        tid = headers["x-trace-id"]
        assert len(tid) == 32
        int(tid, 16)

    def test_injected_traceparent_is_honored(self, client):
        _, _, headers = client.get(
            "/healthz",
            headers={"traceparent": f"00-{TRACE32}-b7ad6b7169203331-01"},
        )
        assert headers["x-trace-id"] == TRACE32

    def test_bare_x_trace_id_is_honored(self, client):
        _, _, headers = client.get(
            "/version", headers={"X-Trace-Id": "my-req-1"}
        )
        assert headers["x-trace-id"] == "my-req-1"

    def test_debug_requests_lists_recent_traffic(self, client):
        client.get("/healthz")
        status, payload, _ = client.get("/debug/requests?n=100")
        assert status == 200
        data = payload["data"]
        assert data["capacity"] >= 1
        assert data["recorded"] == len(data["requests"]) or data["recorded"] > 0
        routes = {r["route"] for r in data["requests"]}
        assert "healthz" in routes
        row = data["requests"][-1]
        assert {"trace_id", "status", "duration_s", "spans"} <= set(row)

    def test_debug_requests_rejects_bad_n(self, client):
        status, _, _ = client.get("/debug/requests?n=0")
        assert status == 400
        status, _, _ = client.get("/debug/requests?n=abc")
        assert status == 400

    def test_debug_slow_sorts_by_duration(self, client):
        client.get("/healthz")
        client.get("/version")
        _, payload, _ = client.get("/debug/slow?n=5")
        durations = [r["duration_s"] for r in payload["data"]["requests"]]
        assert durations == sorted(durations, reverse=True)

    def test_debug_trace_resolves_and_exports_chrome_trace(self, client):
        tid = "debug-trace-test-1"
        client.get("/wall/projections", headers={"X-Trace-Id": tid})
        status, payload, _ = client.get(f"/debug/trace/{tid}")
        assert status == 200
        data = payload["data"]
        assert data["trace_id"] == tid
        assert data["span_count"] >= 1
        span_names = {
            s["name"] for r in data["records"] for s in r["spans"]
        }
        assert "serve.request" in span_names
        events = data["chrome_trace"]["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert all(
            e["args"]["trace_id"] == tid for e in events if e["ph"] == "X"
        )

    def test_debug_trace_unknown_id_is_404(self, client):
        status, payload, _ = client.get("/debug/trace/no-such-trace")
        assert status == 404
        assert "flight recorder" in payload["data"]["error"]

    def test_latency_histogram_family_is_served(self, client):
        client.get("/healthz")
        _, text, _ = client.get("/metrics", raw=True)
        assert "# TYPE repro_serve_latency_s histogram" in text
        assert 'repro_serve_latency_s_bucket{le="+Inf"}' in text
        assert "repro_serve_latency_s_sum" in text
        # The per-route family exists too.
        assert "repro_serve_latency_s_healthz_count" in text


class TestCli:
    def test_tail_once_prints_recent_requests(self, server, client, capsys):
        client.get("/healthz", headers={"X-Trace-Id": "tail-test-1"})
        rc = main(
            ["tail", "--url", f"http://127.0.0.1:{server.port}", "--once"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace=tail-test-1" in out
        assert "/healthz" in out

    def test_tail_unreachable_server_fails(self, capsys):
        rc = main(["tail", "--url", "http://127.0.0.1:9", "--once"])
        assert rc == 1

    def test_stats_format_json(self, capsys):
        assert main(["stats", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, dict)
