"""End-to-end tests against a live in-process server.

The headline property: a served payload is *the same numbers* as the
offline ``repro export`` artifact — verified through the provenance
drift comparator, the same machinery CI uses to gate golden drift
between runs.
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.provenance.drift import compare_golden, flatten_scalars
from repro.provenance.manifest import SCHEMA_VERSION, RunLedger

#: Artifacts cheap enough to export inside a test (no sweep engine runs).
PARITY_ARTIFACTS = ("fig1", "fig3d", "fig15_16", "table5")


class TestProvenanceEnvelope:
    def test_every_endpoint_carries_the_envelope(self, client):
        for target in ("/healthz", "/version", "/artifacts", "/wall/projections"):
            status, payload, headers = client.get(target)
            assert status == 200, target
            assert payload["schema_version"] == SCHEMA_VERSION
            server_block = payload["server"]
            assert server_block["command"] == "serve"
            assert server_block["run_id"]
            assert "data" in payload
            # Headers repeat the stamp for non-JSON consumers.
            assert headers["x-run-id"] == server_block["run_id"]
            assert headers["x-schema-version"] == str(SCHEMA_VERSION)

    def test_run_id_is_recorded_in_the_ledger(self, client, server_runs_dir):
        _, payload, _ = client.get("/healthz")
        run_id = payload["server"]["run_id"]
        manifest = RunLedger(server_runs_dir).get(run_id)
        assert manifest.command == "serve"

    def test_error_responses_are_enveloped_too(self, client):
        status, payload, _ = client.get("/no/such/route")
        assert status == 404
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["data"]["status"] == 404


class TestOperationalSurface:
    def test_healthz(self, client):
        status, payload, _ = client.get("/healthz")
        data = payload["data"]
        assert status == 200
        assert data["status"] == "ok"
        assert data["uptime_s"] >= 0
        assert "FFT" in data["workloads"]
        assert set(data["jobs"]) >= {"queued", "running", "done"}

    def test_version_matches_package(self, client):
        import repro

        _, payload, _ = client.get("/version")
        assert payload["data"]["version"] == repro.__version__

    def test_metrics_prometheus_text(self, client):
        client.get("/healthz")  # ensure at least one counted request
        status, text, headers = client.get("/metrics", raw=True)
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_latency_s_count" in text
        assert "repro_serve_requests_healthz" in text

    def test_method_not_allowed(self, client):
        status, payload, headers = client.post("/healthz", {})
        assert status == 405
        assert "GET" in headers["allow"]


class TestGoldenParity:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.reporting.export import export_all

        out = tmp_path_factory.mktemp("artifacts")
        paths = export_all(out, names=list(PARITY_ARTIFACTS))
        return {
            name: json.loads(path.read_text())["data"]
            for name, path in paths.items()
        }

    @pytest.mark.parametrize("name", PARITY_ARTIFACTS)
    def test_served_artifact_matches_export_byte_for_byte(
        self, client, exported, name
    ):
        status, payload, _ = client.get(f"/artifacts/{name}")
        assert status == 200
        served = payload["data"]
        # Strict form: identical JSON serialisation.
        assert json.dumps(served, sort_keys=True) == json.dumps(
            exported[name], sort_keys=True
        )
        # And through the drift comparator (the CI gate): zero drift.
        compared, drifted, added, removed = compare_golden(
            flatten_scalars(exported[name], name),
            flatten_scalars(served, name),
        )
        assert compared > 0
        assert drifted == [] and added == [] and removed == []

    def test_artifact_index_lists_known_names(self, client):
        _, payload, _ = client.get("/artifacts")
        names = payload["data"]["artifacts"]
        assert set(PARITY_ARTIFACTS) <= set(names)

    def test_unknown_artifact_404_lists_valid_names(self, client):
        status, payload, _ = client.get("/artifacts/fig99")
        assert status == 404
        assert "fig3d" in payload["data"]["valid_artifacts"]

    def test_wall_projections_equals_fig15_16_artifact(self, client, exported):
        _, payload, _ = client.get("/wall/projections")
        assert payload["data"] == exported["fig15_16"]


class TestTechEndpoints:
    """The technology-backend surface: GET /tech and ?tech= parameters."""

    def test_tech_index_lists_registered_backends(self, client):
        from repro.tech import backend_names

        status, payload, _ = client.get("/tech")
        assert status == 200
        data = payload["data"]
        assert data["baseline"] == "cmos"
        listed = [entry["name"] for entry in data["technologies"]]
        assert listed == backend_names()
        for entry in data["technologies"]:
            assert len(entry["param_hash"]) == 64
            assert entry["source"]

    def test_projections_tech_parity_with_exported_artifact(
        self, client, tmp_path
    ):
        """?tech=tfet serves the exported fig15_16_tfet numbers (drift gate)."""
        from repro.reporting.export import export_all

        exported = json.loads(
            export_all(tmp_path, names=["fig15_16_tfet"])[
                "fig15_16_tfet"
            ].read_text()
        )["data"]
        status, payload, _ = client.get("/wall/projections?tech=tfet")
        assert status == 200
        data = payload["data"]
        assert data["tech"] == "tfet"
        assert data["baseline"] == "cmos"
        compared, drifted, added, removed = compare_golden(
            flatten_scalars(exported, "fig15_16_tfet"),
            flatten_scalars(data["projections"], "fig15_16_tfet"),
        )
        assert compared > 0
        assert drifted == [] and added == [] and removed == []

    def test_tech_cmos_is_the_default_response(self, client):
        _, plain, _ = client.get("/wall/projections")
        _, cmos, _ = client.get("/wall/projections?tech=cmos")
        assert cmos["data"] == plain["data"]

    def test_unknown_tech_is_a_400_with_valid_names(self, client):
        from repro.tech import backend_names

        for target in (
            "/wall/projections?tech=graphene",
            "/cmos/gains?node=5&tech=graphene",
            "/csr/video?tech=graphene",
        ):
            status, payload, _ = client.get(target)
            assert status == 400, target
            assert payload["data"]["valid_technologies"] == backend_names()

    def test_gains_tech_parameter_switches_the_model(self, client):
        from repro.tech import get_backend

        status, payload, _ = client.get("/cmos/gains?node=5&tdp_w=50&tech=tfet")
        assert status == 200
        data = payload["data"]
        assert data["tech"] == "tfet"
        gains = get_backend("tfet").model().evaluate(
            5.0, 1000.0, area_mm2=100.0, tdp_w=50.0
        )
        assert data["power_w"] == gains.power_w
        # The default response keeps its pre-tech shape: no "tech" key.
        _, plain, _ = client.get("/cmos/gains?node=5&tdp_w=50")
        assert "tech" not in plain["data"]

    def test_per_tech_artifacts_resolve_via_the_registry(self, client):
        _, payload, _ = client.get("/artifacts")
        names = payload["data"]["artifacts"]
        assert {"fig15_16_tfet", "tech_delta_chiplet", "fig3d"} <= set(names)
        status, payload, _ = client.get("/artifacts/tech_delta_finfet")
        assert status == 200
        assert payload["data"]["tech"] == "finfet"
        assert payload["data"]["rows"]


class TestQueryEndpoints:
    def test_cmos_gains_matches_direct_model(self, client):
        from repro.cmos.model import CmosPotentialModel

        status, payload, _ = client.get("/cmos/gains?node=5&tdp_w=100")
        assert status == 200
        data = payload["data"]
        model = CmosPotentialModel.paper()
        gains = model.evaluate(5.0, 1000.0, area_mm2=100.0, tdp_w=100.0)
        base = model.evaluate(45.0, 1000.0, area_mm2=100.0, tdp_w=100.0)
        assert data["power_w"] == gains.power_w
        assert data["throughput_gain"] == gains.throughput / base.throughput

    def test_cmos_gains_requires_node(self, client):
        status, payload, _ = client.get("/cmos/gains")
        assert status == 400
        assert "node" in payload["data"]["error"]

    def test_csr_series_matches_study(self, client):
        from repro.cli import _study_object
        from repro.cmos.model import CmosPotentialModel

        status, payload, _ = client.get("/csr/bitcoin")
        assert status == 200
        data = payload["data"]
        model = CmosPotentialModel.paper()
        study = _study_object("bitcoin", model)
        series = study.performance_series(model)
        assert data["study"] == study.name
        assert [p["csr"] for p in data["series"]] == [p.csr for p in series]
        assert data["summary"] == study.summary(model)

    def test_unknown_study_lists_valid_names(self, client):
        status, payload, _ = client.get("/csr/nope")
        assert status == 400
        assert "video" in payload["data"]["valid_studies"]

    def test_whatif_identity_scales_match_baseline(self, client):
        status, payload, _ = client.post(
            "/wall/whatif", {"domain": "bitcoin_mining"}
        )
        assert status == 200
        data = payload["data"]
        assert data["scenario"]["physical_limit"] == pytest.approx(
            data["baseline"]["physical_limit"]
        )

    def test_whatif_rejects_unknown_domain_and_bad_scale(self, client):
        status, payload, _ = client.post("/wall/whatif", {"domain": "nope"})
        assert status == 400
        assert "video_decoding" in payload["data"]["valid_domains"]
        status, payload, _ = client.post(
            "/wall/whatif", {"domain": "bitcoin_mining", "die_scale": -1}
        )
        assert status == 400

    def test_evaluate_matches_direct_evaluation(self, client, server):
        from repro.serve.handlers import compute_evaluate_batch

        body = {"workload": "FFT", "node_nm": 5.0, "partition": 16,
                "simplification": 5, "heterogeneity": True}
        status, payload, _ = client.post("/evaluate", body)
        assert status == 200
        direct = compute_evaluate_batch(server.app, [body])[0]
        assert payload["data"] == json.loads(json.dumps(direct))

    def test_evaluate_validates_input_types(self, client):
        bad = [
            {"workload": 42},
            {"workload": "FFT", "partition": "sixteen"},
            {"workload": "FFT", "partition": 3},       # not a power of two
            {"workload": "FFT", "simplification": 99},  # out of range
            {"workload": "NOPE"},
        ]
        for body in bad:
            status, payload, _ = client.post("/evaluate", body)
            assert status == 400, body
            assert "error" in payload["data"]

    def test_attribute_returns_share_decomposition(self, client):
        status, payload, _ = client.post("/attribute", {"workload": "FFT"})
        assert status == 200
        data = payload["data"]
        assert data["workload"].upper() == "FFT"
        assert data["total_gain"] > 1
        assert isinstance(data["shares"], dict) and data["shares"]

    def test_malformed_json_body_is_400(self, client, server):
        import http.client as hc

        conn = hc.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/evaluate", body=b"{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in payload["data"]["error"]
        finally:
            conn.close()


class TestBatchingEquivalence:
    def test_concurrent_identical_requests_return_identical_payloads(
        self, client, server
    ):
        body = {"workload": "GMM", "node_nm": 7.0, "partition": 32,
                "simplification": 7}
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(client.post, "/evaluate", body) for _ in range(8)
            ]
            responses = [f.result() for f in futures]
        assert all(status == 200 for status, _, _ in responses)
        bodies = {json.dumps(p["data"], sort_keys=True) for _, p, _ in responses}
        assert len(bodies) == 1  # one coalesced result, shared verbatim

    def test_batched_equals_unbatched_server(self, client, server):
        """The same request answered with batching off must not change."""
        from tests.serve.conftest import ServeClient, make_server

        bodies = [
            {"workload": "FFT", "node_nm": n, "partition": p, "simplification": s}
            for n, p, s in ((5.0, 8, 3), (7.0, 64, 9), (10.0, 1, 1))
        ]
        unbatched = make_server(batching=False)
        try:
            plain = ServeClient(unbatched.port)
            for body in bodies:
                _, batched_payload, _ = client.post("/evaluate", body)
                _, plain_payload, _ = plain.post("/evaluate", body)
                assert batched_payload["data"] == plain_payload["data"]
        finally:
            unbatched.stop()

    def test_mixed_concurrent_traffic_is_correct_per_request(self, client):
        """Distinct concurrent payloads must each get their own answer."""
        bodies = [
            {"workload": "FFT", "node_nm": 5.0, "partition": p, "simplification": 1}
            for p in (1, 2, 4, 8, 16, 32)
        ]
        with concurrent.futures.ThreadPoolExecutor(len(bodies)) as pool:
            futures = [pool.submit(client.post, "/evaluate", b) for b in bodies]
            responses = [f.result() for f in futures]
        for body, (status, payload, _) in zip(bodies, responses):
            assert status == 200
            assert payload["data"]["design"]["partition"] == body["partition"]
