"""Lifecycle tests: rate limiting, background jobs, graceful drain.

Each test class starts its own server because these behaviours need
non-default configuration (a tight rate limit, a single job worker) or
tear the server down as part of the test.
"""

from __future__ import annotations

import http.client
import time

import pytest

from tests.serve.conftest import ServeClient, make_server

#: Small custom sweep grid: fast enough for polling tests.
SMALL_SWEEP = {"workload": "FFT", "nodes": [5.0], "partitions": [1, 2],
               "simplifications": [1]}

#: Big enough to keep the single job worker busy while we poke the queue.
SLOW_SWEEP = {"workload": "S3D", "nodes": [45.0, 22.0, 10.0, 5.0],
              "partitions": [2, 8, 32, 128], "simplifications": [3, 5, 7]}


def wait_for(predicate, timeout_s=60.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not met in time")


class TestRateLimiting:
    def test_burst_gets_429_with_retry_after(self):
        handle = make_server(rate_limit=2.0, rate_burst=2.0)
        client = ServeClient(handle.port, client_id="hammer")
        try:
            statuses, retry_headers = [], []
            for _ in range(6):
                status, payload, headers = client.get("/cmos/gains?node=5")
                statuses.append(status)
                if status == 429:
                    retry_headers.append(headers.get("retry-after"))
                    assert payload["data"]["retry_after_s"] > 0
            assert statuses.count(200) == 2  # the burst allowance
            assert statuses.count(429) == 4
            assert all(h is not None for h in retry_headers)
        finally:
            handle.stop()

    def test_ops_routes_and_other_clients_are_exempt(self):
        handle = make_server(rate_limit=1.0, rate_burst=1.0)
        try:
            hammer = ServeClient(handle.port, client_id="hammer")
            other = ServeClient(handle.port, client_id="polite")
            hammer.get("/cmos/gains?node=5")
            status, _, _ = hammer.get("/cmos/gains?node=5")
            assert status == 429
            # A different client has its own bucket...
            assert other.get("/cmos/gains?node=5")[0] == 200
            # ...and the operational surface is never limited.
            for _ in range(5):
                assert hammer.get("/healthz")[0] == 200
                assert hammer.get("/metrics", raw=True)[0] == 200
        finally:
            handle.stop()


class TestAdmissionControl:
    def test_saturated_worker_sheds_with_retry_after(self):
        import asyncio
        import threading

        handle = make_server(max_inflight=1)
        block = threading.Event()
        try:
            app = handle.app

            async def slow(app_, request):
                loop = asyncio.get_event_loop()
                await loop.run_in_executor(None, block.wait, 30.0)
                return {"ok": True}

            app.router.add("GET", "/slow", slow, name="slow")
            client = ServeClient(handle.port)
            results = []
            holder = threading.Thread(
                target=lambda: results.append(client.get("/slow"))
            )
            holder.start()
            wait_for(lambda: app.gate.inflight == 1)
            # The only slot is held: the next request is shed, not queued.
            status, payload, headers = client.get("/cmos/gains?node=5")
            assert status == 503
            assert headers.get("retry-after") is not None
            assert "saturated" in payload["data"]["error"]
            assert payload["data"]["retry_after_s"] > 0
            # The operational surface is never shed...
            status, health, _ = client.get("/healthz")
            assert status == 200
            assert health["data"]["shed_requests"] >= 1
            # ...and releasing the slot admits new work again.
            block.set()
            holder.join(30.0)
            assert results and results[0][0] == 200
            assert client.get("/cmos/gains?node=5")[0] == 200
        finally:
            block.set()
            handle.stop()


class TestSweepJobs:
    @pytest.fixture(scope="class")
    def jobs_server(self):
        handle = make_server(job_concurrency=1, max_pending_jobs=4)
        yield handle
        handle.stop()

    @pytest.fixture(scope="class")
    def jobs_client(self, jobs_server):
        return ServeClient(jobs_server.port)

    def test_submit_poll_result(self, jobs_client):
        status, payload, _ = jobs_client.post("/sweeps", SMALL_SWEEP)
        assert status == 202
        job = payload["data"]["job"]
        assert job["status"] == "queued" and job["result"] is None
        job_id = job["job_id"]

        def settled():
            _, poll, _ = jobs_client.get(f"/sweeps/{job_id}")
            entry = poll["data"]["job"]
            return entry if entry["status"] in ("done", "failed") else None

        entry = wait_for(settled)
        assert entry["status"] == "done", entry["error"]
        result = entry["result"]
        assert result["design_points"] == 2  # 1 node x 2 partitions x 1 simp
        assert result["workload"].upper() == "FFT"
        assert result["pareto_frontier"]
        assert result["stats"]["design_points"] == 2

    def test_invalid_grid_fails_the_job_not_the_server(self, jobs_client):
        bad = {"workload": "FFT", "partitions": [3]}  # not a power of two
        status, payload, _ = jobs_client.post("/sweeps", bad)
        assert status == 202
        job_id = payload["data"]["job"]["job_id"]

        def settled():
            _, poll, _ = jobs_client.get(f"/sweeps/{job_id}")
            entry = poll["data"]["job"]
            return entry if entry["status"] in ("done", "failed") else None

        entry = wait_for(settled)
        assert entry["status"] == "failed"
        assert "invalid sweep grid" in entry["error"]

    def test_unknown_workload_is_rejected_at_submit(self, jobs_client):
        status, payload, _ = jobs_client.post("/sweeps", {"workload": "NOPE"})
        assert status == 400
        assert "valid_workloads" in payload["data"]

    def test_cancel_queued_job_and_409_on_running(self, jobs_client):
        # Occupy the single worker, then queue a second job behind it.
        _, busy, _ = jobs_client.post("/sweeps", SLOW_SWEEP)
        busy_id = busy["data"]["job"]["job_id"]
        _, queued, _ = jobs_client.post("/sweeps", SMALL_SWEEP)
        queued_id = queued["data"]["job"]["job_id"]

        status, payload, _ = jobs_client.delete(f"/sweeps/{queued_id}")
        assert status == 200
        assert payload["data"]["job"]["status"] == "cancelled"

        wait_for(
            lambda: jobs_client.get(f"/sweeps/{busy_id}")[1]["data"]["job"][
                "status"
            ] != "queued"
        )
        _, poll, _ = jobs_client.get(f"/sweeps/{busy_id}")
        if poll["data"]["job"]["status"] == "running":
            status, payload, _ = jobs_client.delete(f"/sweeps/{busy_id}")
            assert status == 409
            assert payload["data"]["status_now"] == "running"
        wait_for(
            lambda: jobs_client.get(f"/sweeps/{busy_id}")[1]["data"]["job"][
                "status"
            ] in ("done", "failed")
        )

    def test_jobs_listing_and_unknown_id(self, jobs_client):
        status, payload, _ = jobs_client.get("/sweeps")
        assert status == 200
        assert isinstance(payload["data"]["jobs"], list)
        assert payload["data"]["counts"]["done"] >= 1
        status, payload, _ = jobs_client.get("/sweeps/job-missing")
        assert status == 404


class TestGracefulDrain:
    def test_draining_rejects_new_work_but_keeps_ops(self):
        handle = make_server()
        client = ServeClient(handle.port)
        try:
            assert client.get("/healthz")[1]["data"]["status"] == "ok"
            handle.app.draining = True  # simulate SIGTERM received
            status, payload, _ = client.get("/cmos/gains?node=5")
            assert status == 503
            status, payload, _ = client.get("/healthz")
            assert status == 200
            assert payload["data"]["status"] == "draining"
        finally:
            handle.app.draining = False
            handle.stop()

    def test_stop_drains_and_closes_the_port(self):
        handle = make_server()
        client = ServeClient(handle.port)
        _, payload, _ = client.post("/sweeps", SMALL_SWEEP)
        job_id = payload["data"]["job"]["job_id"]
        handle.stop()
        # The listener is gone...
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=2
            )
            conn.request("GET", "/healthz")
            conn.getresponse()
        # ...and the job queue was shut down with the server.
        job = handle.app.jobs.get(job_id)
        assert job.settled

    def test_inflight_request_completes_during_drain(self):
        handle = make_server()
        client = ServeClient(handle.port)
        import threading

        results = {}

        def slow_request():
            results["response"] = client.post(
                "/evaluate",
                {"workload": "SRT", "node_nm": 5.0, "partition": 128,
                 "simplification": 11},
            )

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.005)  # let the request reach the server
        handle.stop()
        thread.join(30)
        status, payload, _ = results["response"]
        assert status == 200
        assert payload["data"]["design"]["partition"] == 128
