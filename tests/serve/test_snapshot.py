"""Snapshot warm-start tests: round-trip fidelity and cold-boot fallback."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.snapshot import (
    SNAPSHOT_ARTIFACTS,
    SNAPSHOT_WORKLOADS,
    SNAPSHOT_VERSION,
    ServeSnapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
)


@pytest.fixture(scope="module")
def snapshot():
    return build_snapshot()


class TestBuild:
    def test_carries_model_studies_kernels_artifacts(self, snapshot):
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.model is not None
        assert set(snapshot.kernels) == set(SNAPSHOT_WORKLOADS)
        assert set(snapshot.artifacts) == set(SNAPSHOT_ARTIFACTS)
        assert set(snapshot.studies) == {"video", "gpu", "cnn", "bitcoin"}

    def test_carries_every_registered_tech_model(self, snapshot):
        from repro.tech import backend_names

        assert set(snapshot.tech_models) == set(backend_names())
        for model in snapshot.tech_models.values():
            assert model is not None


class TestRoundTrip:
    def test_save_load_preserves_artifacts_bit_for_bit(self, snapshot, tmp_path):
        path = save_snapshot(snapshot, tmp_path / "snap.pkl")
        loaded = load_snapshot(path)
        assert loaded is not None
        for name in SNAPSHOT_ARTIFACTS:
            assert json.dumps(loaded.artifacts[name], sort_keys=True) == (
                json.dumps(snapshot.artifacts[name], sort_keys=True)
            )

    def test_unpicklable_sections_are_dropped_not_fatal(self, snapshot, tmp_path):
        poisoned = ServeSnapshot(
            model=snapshot.model,
            studies=dict(snapshot.studies),
            kernels=dict(snapshot.kernels),
            artifacts={**snapshot.artifacts, "bad": lambda: None},
        )
        path = save_snapshot(poisoned, tmp_path / "snap.pkl")
        loaded = load_snapshot(path)
        assert loaded is not None
        assert "bad" not in loaded.artifacts
        assert set(loaded.kernels) == set(SNAPSHOT_WORKLOADS)


class TestColdBootFallback:
    def test_missing_file_is_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.pkl") is None

    def test_corrupt_file_is_none(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"not a pickle")
        assert load_snapshot(path) is None

    def test_version_mismatch_is_none(self, snapshot, tmp_path):
        stale = ServeSnapshot(model=snapshot.model, version=SNAPSHOT_VERSION + 1)
        path = tmp_path / "stale.pkl"
        path.write_bytes(pickle.dumps(stale))
        assert load_snapshot(path) is None

    def test_wrong_type_is_none(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"not": "a snapshot"}))
        assert load_snapshot(path) is None


class TestWarmBoot:
    def test_app_adopts_snapshot_state(self, snapshot):
        app = ServeApp(ServeConfig(port=0), snapshot=snapshot)
        app.startup()
        try:
            assert app.model is snapshot.model
            for abbrev in SNAPSHOT_WORKLOADS:
                assert app._kernels[abbrev] is snapshot.kernels[abbrev]
            for name in SNAPSHOT_ARTIFACTS:
                hit, payload = app._artifact_cache.get(name)
                assert hit
                assert json.dumps(payload, sort_keys=True) == (
                    json.dumps(snapshot.artifacts[name], sort_keys=True)
                )
        finally:
            app.executor.shutdown(wait=False)

    def test_tech_backends_are_primed_from_snapshot(self, snapshot):
        from repro.tech import backend_names, get_backend

        app = ServeApp(ServeConfig(port=0), snapshot=snapshot)
        app.startup()
        try:
            for name in backend_names():
                assert get_backend(name).model() is snapshot.tech_models[name]
        finally:
            app.executor.shutdown(wait=False)

    def test_unreadable_snapshot_path_boots_cold(self, tmp_path):
        config = ServeConfig(port=0, snapshot_path=str(tmp_path / "absent.pkl"))
        app = ServeApp(config)
        app.startup()
        try:
            assert app.model is not None  # refitted, not warm-booted
            assert app._kernels == {}
        finally:
            app.executor.shutdown(wait=False)
