"""Multi-worker serving tests: parity, job routing, restart, drain.

These boot the real ``repro serve --workers 2`` CLI as a subprocess (the
supervisor forks, so it cannot run inside the pytest process) and drive
it over HTTP.  The parity tests hold multi-worker responses against the
module's single-process server through the provenance drift comparator —
the bit-identical guarantee the ISSUE acceptance criteria require.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.provenance.drift import compare_golden, flatten_scalars
from repro.serve.jobs import job_owner
from repro.serve.supervisor import SupervisorHandle
from tests.serve.conftest import ServeClient

#: Endpoint families compared bit-for-bit against single-process serving.
PARITY_GETS = (
    "/wall/projections",
    "/cmos/gains?node=5",
    "/cmos/gains?node=7&frequency_mhz=2000&tdp_w=10",
    "/csr/video",
    "/csr/bitcoin",
    "/artifacts/fig15_16",
    "/artifacts/table5",
)

PARITY_POSTS = (
    ("/evaluate", {"workload": "FFT", "node_nm": 5.0, "partition": 64,
                   "simplification": 9}),
    ("/wall/whatif", {"domain": "video_decoding", "die_scale": 2.0}),
    ("/attribute", {"workload": "FFT"}),
)

SMALL_SWEEP = {"workload": "FFT", "nodes": [5.0], "partitions": [1, 2],
               "simplifications": [1]}


def wait_for(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not met in time")


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """One ``--workers 2`` supervisor shared by the module's tests."""
    runs = tmp_path_factory.mktemp("supervisor-runs")
    handle = SupervisorHandle(
        workers=2, env={"REPRO_RUNS_DIR": str(runs)}
    ).start(timeout_s=180.0)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def cluster_client(cluster) -> ServeClient:
    return ServeClient(cluster.port)


class TestLoadBalancing:
    def test_both_workers_serve_the_shared_port(self, cluster_client):
        def workers_seen():
            seen = set()
            for _ in range(25):
                status, _, headers = cluster_client.get("/healthz")
                assert status == 200
                seen.add(headers.get("x-worker"))
                if len(seen) == 2:
                    return seen
            return None

        assert wait_for(workers_seen, timeout_s=60.0) == {"0", "1"}

    def test_healthz_reports_worker_identity(self, cluster_client):
        status, payload, headers = cluster_client.get("/healthz")
        assert status == 200
        worker = payload["data"]["worker"]
        assert worker["index"] == int(headers["x-worker"])
        assert worker["pid"] > 0

    def test_metrics_aggregates_per_worker_series(self, cluster_client):
        # Touch both workers first so each has request counters to report.
        for _ in range(10):
            cluster_client.get("/healthz")
        status, text, _ = cluster_client.get("/metrics", raw=True)
        assert status == 200
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        # One TYPE line per metric even with two series under it.
        assert text.count("# TYPE repro_serve_requests counter") == 1


class TestParity:
    """Every endpoint family: --workers 2 is bit-identical to 1 process."""

    @pytest.fixture(scope="class")
    def single(self, server):
        return ServeClient(server.port)

    @pytest.mark.parametrize("target", PARITY_GETS)
    def test_get_parity(self, single, cluster_client, target):
        status_one, one, _ = single.get(target)
        status_two, two, _ = cluster_client.get(target)
        assert status_one == status_two == 200
        self._assert_identical(target, one["data"], two["data"])

    @pytest.mark.parametrize("target,body", PARITY_POSTS)
    def test_post_parity(self, single, cluster_client, target, body):
        status_one, one, _ = single.post(target, body)
        status_two, two, _ = cluster_client.post(target, body)
        assert status_one == status_two == 200
        self._assert_identical(target, one["data"], two["data"])

    @staticmethod
    def _assert_identical(name, one, two):
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
        compared, drifted, added, removed = compare_golden(
            flatten_scalars(one, name), flatten_scalars(two, name)
        )
        assert compared > 0
        assert drifted == [] and added == [] and removed == []


class TestJobRouting:
    def test_poll_resolves_regardless_of_landing_worker(self, cluster_client):
        status, payload, headers = cluster_client.post("/sweeps", SMALL_SWEEP)
        assert status == 202
        job = payload["data"]["job"]
        owner = job_owner(job["job_id"])
        assert owner == int(headers["x-worker"])

        def settled():
            st, body, _ = cluster_client.get(f"/sweeps/{job['job_id']}")
            assert st == 200
            got = body["data"]["job"]
            return got if got["status"] in ("done", "failed") else None

        final = wait_for(settled, timeout_s=120.0)
        assert final["status"] == "done"
        assert final["result"]["design_points"] == 2

        # Keep polling fresh connections until the kernel lands one on
        # the non-owning worker: that response must carry the same job,
        # resolved over the internal worker-to-worker route.
        def cross_worker_view():
            st, body, headers = cluster_client.get(f"/sweeps/{job['job_id']}")
            assert st == 200
            if int(headers["x-worker"]) == owner:
                return None
            return body["data"]["job"]

        routed = wait_for(cross_worker_view, timeout_s=60.0)
        assert routed["status"] == "done"
        assert routed["job_id"] == job["job_id"]
        assert routed["result"] == final["result"]

    def test_listing_merges_jobs_from_all_workers(self, cluster_client):
        # Submit from several fresh connections so with high probability
        # both workers own at least the union of ids we collect.
        submitted = set()
        for _ in range(4):
            status, payload, _ = cluster_client.post("/sweeps", SMALL_SWEEP)
            assert status == 202
            submitted.add(payload["data"]["job"]["job_id"])

        def all_listed():
            st, body, _ = cluster_client.get("/sweeps")
            assert st == 200
            listed = {job["job_id"] for job in body["data"]["jobs"]}
            return submitted <= listed

        wait_for(all_listed, timeout_s=60.0)

    def test_cancel_routes_to_owner(self, cluster_client):
        status, payload, _ = cluster_client.post("/sweeps", SMALL_SWEEP)
        assert status == 202
        job_id = payload["data"]["job"]["job_id"]
        # The DELETE may land on either worker; routing must find the
        # owner's queue either way.  The job may have started (409) or
        # still be queued (200) — both prove the lookup resolved.
        status, payload, _ = cluster_client.delete(f"/sweeps/{job_id}")
        assert status in (200, 409)
        assert status != 404

    def test_unknown_job_is_404_from_any_worker(self, cluster_client):
        status, _, _ = cluster_client.get("/sweeps/job-w0-ffffffffffff")
        assert status == 404
        # An id claiming a worker slot that does not exist is a clean
        # error, not a hang or a 500.
        status, payload, _ = cluster_client.get("/sweeps/job-w9-ffffffffffff")
        assert status in (404, 503)


class TestRestart:
    @staticmethod
    def _resilient_get(client, target):
        """GET that rides out the SIGKILL window.

        Connections the kernel already hashed to the dying worker's
        accept queue are reset when it exits — expected churn during a
        kill, not a serving failure.  Retry on a fresh connection.
        """
        import http.client as http_client

        for _ in range(40):
            try:
                return client.get(target)
            except (OSError, http_client.HTTPException):
                time.sleep(0.1)
        raise AssertionError(f"{target} never answered across retries")

    def test_supervisor_restarts_a_killed_worker(self, cluster_client):
        def pid_map():
            pids = {}
            for _ in range(40):
                status, body, _ = cluster_client.get("/healthz")
                assert status == 200
                worker = body["data"]["worker"]
                pids[worker["index"]] = worker["pid"]
                if len(pids) == 2:
                    return pids
            return None

        pids = wait_for(pid_map, timeout_s=60.0)
        victim_index, victim_pid = sorted(pids.items())[0]
        os.kill(victim_pid, signal.SIGKILL)

        # The survivor keeps serving while the slot is down.
        for _ in range(5):
            assert self._resilient_get(cluster_client, "/healthz")[0] == 200

        def replacement_up():
            status, body, _ = self._resilient_get(cluster_client, "/healthz")
            assert status == 200
            worker = body["data"]["worker"]
            if worker["index"] == victim_index and worker["pid"] != victim_pid:
                return worker["pid"]
            return None

        new_pid = wait_for(replacement_up, timeout_s=60.0)
        assert new_pid != victim_pid


class TestStitchedTrace:
    """One injected trace id stitches a request across both workers."""

    TRACE = "aaaabbbbccccddddeeeeffff00001111"
    HEADERS = {"traceparent": f"00-{TRACE}-b7ad6b7169203331-01"}

    def test_cross_worker_request_is_one_trace(self, cluster_client):
        status, payload, headers = cluster_client.post(
            "/sweeps", SMALL_SWEEP, headers=self.HEADERS
        )
        assert status == 202
        assert headers["x-trace-id"] == self.TRACE
        job = payload["data"]["job"]
        assert job["trace_id"] == self.TRACE
        owner = job_owner(job["job_id"])

        # Poll under the same trace until the job settles AND at least one
        # poll has landed on the non-owning worker — that poll resolves the
        # job over the internal loopback, creating the cross-worker hop.
        state = {"crossed": False}

        def settled_and_crossed():
            st, body, hdrs = cluster_client.get(
                f"/sweeps/{job['job_id']}", headers=self.HEADERS
            )
            assert st == 200
            assert hdrs["x-trace-id"] == self.TRACE
            if int(hdrs["x-worker"]) != owner:
                state["crossed"] = True
            got = body["data"]["job"]
            done = got["status"] in ("done", "failed")
            return got if done and state["crossed"] else None

        final = wait_for(settled_and_crossed, timeout_s=120.0)
        assert final["status"] == "done"

        # Whichever worker answers, the fleet-merged view shows records
        # from BOTH sides of the hop under the one trace id.
        status, payload, _ = cluster_client.get(f"/debug/trace/{self.TRACE}")
        assert status == 200
        data = payload["data"]
        assert data["trace_id"] == self.TRACE
        assert data["workers"] == [0, 1]
        assert data["span_count"] >= 2
        routes = {r["route"] for r in data["records"]}
        assert "sweeps.submit" in routes
        assert "sweeps.get" in routes
        assert "job.sweep" in routes  # the background execution itself
        assert any(r["internal"] for r in data["records"])

        # The Chrome export stitches the processes with flow arrows.
        events = data["chrome_trace"]["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "M", "s", "f"} <= phases
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) >= 2  # spans from two worker processes

    def test_fleet_debug_requests_sees_both_workers(self, cluster_client):
        for _ in range(6):
            cluster_client.get("/healthz")
        status, payload, _ = cluster_client.get("/debug/requests?n=200")
        assert status == 200
        workers = {
            r["worker"] for r in payload["data"]["requests"]
            if r["worker"] is not None
        }
        assert workers == {0, 1}


class TestShutdown:
    def test_sigterm_drains_every_worker_and_exits_zero(self, cluster):
        # Must run last in this module: it tears the shared cluster down.
        assert cluster.stop() == 0
        assert "drained, bye" in cluster.output
