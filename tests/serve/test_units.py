"""Unit tests for the serving building blocks (no sockets involved)."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.batching import LruCache, MicroBatcher
from repro.serve.handlers import render_prometheus, render_prometheus_multi
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JobQueue,
    QueueFullError,
    UnknownJobError,
    job_owner,
)
from repro.serve.limits import InflightGate, RateLimiter
from repro.serve.router import HttpError, Request, Response, Router


def run(coro):
    return asyncio.run(coro)


class TestRouter:
    def _router(self):
        async def handler(app, request, **params):
            return params

        router = Router()
        router.add("GET", "/healthz", handler, name="healthz")
        router.add("GET", "/sweeps/{job_id}", handler, name="sweeps.get")
        router.add("DELETE", "/sweeps/{job_id}", handler, name="sweeps.cancel")
        return router

    def test_resolves_static_and_param_routes(self):
        router = self._router()
        route, params = router.resolve("GET", "/healthz")
        assert route.name == "healthz" and params == {}
        route, params = router.resolve("GET", "/sweeps/job-abc")
        assert route.name == "sweeps.get" and params == {"job_id": "job-abc"}

    def test_unknown_path_is_404_with_route_list(self):
        with pytest.raises(HttpError) as err:
            self._router().resolve("GET", "/nope")
        assert err.value.status == 404
        assert "/healthz" in err.value.detail["routes"]

    def test_wrong_method_is_405_with_allow_header(self):
        with pytest.raises(HttpError) as err:
            self._router().resolve("POST", "/sweeps/job-abc")
        assert err.value.status == 405
        assert "GET" in err.value.headers["Allow"]
        assert "DELETE" in err.value.headers["Allow"]

    def test_request_target_parsing(self):
        path, query = Request.parse_target("/cmos/gains?node=5&tdp_w=10")
        assert path == "/cmos/gains"
        assert query == {"node": "5", "tdp_w": "10"}

    def test_param_float_rejects_garbage(self):
        request = Request(
            method="GET", path="/x", query={"node": "abc"},
            headers={}, body=b"", client="t",
        )
        with pytest.raises(HttpError) as err:
            request.param_float("node")
        assert err.value.status == 400

    def test_json_object_rejects_non_objects(self):
        request = Request(
            method="POST", path="/x", query={},
            headers={}, body=b"[1, 2]", client="t",
        )
        with pytest.raises(HttpError) as err:
            request.json_object()
        assert err.value.status == 400


class TestLruCache:
    def test_hit_miss_and_eviction(self):
        cache = LruCache(2, name="t")
        assert cache.get("a") == (False, None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes recency
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_zero_capacity_disables(self):
        cache = LruCache(0, name="t")
        cache.put("a", 1)
        assert cache.get("a") == (False, None)
        assert len(cache) == 0


class TestRateLimiter:
    def test_disabled_when_rate_zero(self):
        limiter = RateLimiter(0.0)
        assert not limiter.enabled
        assert limiter.allow("x") == (True, 0.0)

    def test_burst_then_denied_with_retry_after(self):
        limiter = RateLimiter(1.0, burst=2)
        now = 100.0
        assert limiter.allow("c", now=now)[0]
        assert limiter.allow("c", now=now)[0]
        admitted, retry_after = limiter.allow("c", now=now)
        assert not admitted
        assert retry_after > 0

    def test_tokens_refill_over_time(self):
        limiter = RateLimiter(10.0, burst=1)
        assert limiter.allow("c", now=100.0)[0]
        assert not limiter.allow("c", now=100.0)[0]
        assert limiter.allow("c", now=100.2)[0]  # 0.2s * 10/s = 2 tokens

    def test_clients_are_independent(self):
        limiter = RateLimiter(1.0, burst=1)
        assert limiter.allow("a", now=100.0)[0]
        assert limiter.allow("b", now=100.0)[0]
        assert not limiter.allow("a", now=100.0)[0]

    def test_eviction_never_grants_free_burst(self):
        """Regression: table churn used to hand drained clients a refill.

        The old ``_evict`` dropped the least-recently-updated bucket
        regardless of its token balance, so a client that spent its whole
        burst and idled briefly came back to a brand-new full bucket.
        """
        limiter = RateLimiter(1.0, burst=2.0, max_clients=1)
        assert limiter.allow("a", now=100.0)[0]
        assert limiter.allow("a", now=100.0)[0]
        assert not limiter.allow("a", now=100.0)[0]  # burst spent
        # Another client arriving overflows the 1-bucket table — the
        # churn that used to evict (and thereby reset) client "a".
        assert limiter.allow("b", now=100.01)[0]
        admitted, retry_after = limiter.allow("a", now=100.02)
        assert not admitted  # old behaviour: a fresh burst right here
        assert retry_after > 0

    def test_eviction_drops_only_refilled_buckets(self):
        limiter = RateLimiter(1.0, burst=2.0, max_clients=1)
        assert limiter.allow("a", now=100.0)[0]  # leaves 1 token
        # By now=103 client "a" has refilled to full: evictable, and the
        # table shrinks back to its bound on the next insertion.
        assert limiter.allow("b", now=103.0)[0]
        assert len(limiter) == 1

    def test_incoming_bucket_is_not_self_evicted(self):
        """A new client's own (full) bucket must survive the overflow scan,
        or an overflowed table would grant it a fresh burst per request."""
        limiter = RateLimiter(1.0, burst=1.0, max_clients=0)
        assert limiter.allow("a", now=100.0)[0]
        assert not limiter.allow("a", now=100.0)[0]


class TestInflightGate:
    def test_disabled_when_cap_is_zero(self):
        gate = InflightGate(0)
        assert not gate.enabled
        assert all(gate.try_acquire() for _ in range(100))
        assert gate.inflight == 0

    def test_acquire_release_and_shed_accounting(self):
        gate = InflightGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()  # saturated -> shed
        assert gate.shed == 1
        assert gate.inflight == 2
        gate.release()
        assert gate.try_acquire()  # a freed slot admits again
        gate.release()
        gate.release()
        assert gate.inflight == 0

    def test_retry_after_is_bounded(self):
        gate = InflightGate(1)
        assert gate.retry_after_s(0.0) == pytest.approx(0.05)
        assert gate.retry_after_s(0.8) == pytest.approx(0.8)
        assert gate.retry_after_s(120.0) == pytest.approx(5.0)


class TestJobOwner:
    def test_multi_worker_ids_carry_their_owner(self):
        assert job_owner("job-w0-abc123") == 0
        assert job_owner("job-w17-abc123") == 17

    def test_single_process_ids_have_no_owner(self):
        assert job_owner("job-abc123") is None
        assert job_owner("not-a-job-id") is None

    def test_queue_mints_owned_ids(self):
        async def scenario():
            queue = JobQueue(lambda k, p: None, worker_index=3)
            return queue.submit("sweep", {})

        job = asyncio.run(scenario())
        assert job.job_id.startswith("job-w3-")
        assert job_owner(job.job_id) == 3


class TestMicroBatcher:
    def test_concurrent_identical_requests_coalesce(self):
        calls = []

        def batch_fn(items):
            calls.append(list(items))
            return [{"item": item} for item in items]

        async def scenario():
            batcher = MicroBatcher(batch_fn, window_s=0.01)
            results = await asyncio.gather(
                batcher.submit("k", "payload"),
                batcher.submit("k", "payload"),
                batcher.submit("k", "payload"),
            )
            return results

        results = run(scenario())
        assert results == [{"item": "payload"}] * 3
        assert calls == [["payload"]]  # one flush, one coalesced item

    def test_distinct_payloads_batch_together(self):
        calls = []

        def batch_fn(items):
            calls.append(list(items))
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(batch_fn, window_s=0.01)
            return await asyncio.gather(
                batcher.submit("a", 1), batcher.submit("b", 2), batcher.submit("c", 3)
            )

        assert run(scenario()) == [2, 4, 6]
        assert len(calls) == 1 and sorted(calls[0]) == [1, 2, 3]

    def test_batched_equals_sequential(self):
        def batch_fn(items):
            return [item ** 2 for item in items]

        async def batched():
            batcher = MicroBatcher(batch_fn, window_s=0.005)
            return await asyncio.gather(
                *(batcher.submit(i, i) for i in range(10))
            )

        async def sequential():
            batcher = MicroBatcher(batch_fn, window_s=0.0)
            out = []
            for i in range(10):
                out.append(await batcher.submit(i, i))
            return out

        assert run(batched()) == run(sequential()) == [i ** 2 for i in range(10)]

    def test_batch_exception_fans_out_to_all_waiters(self):
        def batch_fn(items):
            raise RuntimeError("boom")

        async def scenario():
            batcher = MicroBatcher(batch_fn, window_s=0.005)
            results = await asyncio.gather(
                batcher.submit("a", 1),
                batcher.submit("b", 2),
                return_exceptions=True,
            )
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_max_batch_splits_flushes(self):
        calls = []

        def batch_fn(items):
            calls.append(len(items))
            return list(items)

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=2, window_s=0.005)
            return await asyncio.gather(
                *(batcher.submit(i, i) for i in range(5))
            )

        assert run(scenario()) == list(range(5))
        assert all(size <= 2 for size in calls)
        assert sum(calls) == 5


class TestJobQueue:
    def test_lifecycle_submit_run_done(self):
        async def scenario():
            queue = JobQueue(lambda kind, params: {"kind": kind, **params})
            queue.start()
            job = queue.submit("sweep", {"x": 1})
            assert job.status == "queued"
            while not queue.get(job.job_id).settled:
                await asyncio.sleep(0.01)
            await queue.close()
            return queue.get(job.job_id)

        job = run(scenario())
        assert job.status == DONE
        assert job.result == {"kind": "sweep", "x": 1}
        assert job.started_unix is not None and job.finished_unix is not None

    def test_failure_is_recorded_not_raised(self):
        def runner(kind, params):
            raise ValueError("bad grid")

        async def scenario():
            queue = JobQueue(runner)
            queue.start()
            job = queue.submit("sweep", {})
            while not queue.get(job.job_id).settled:
                await asyncio.sleep(0.01)
            await queue.close()
            return queue.get(job.job_id)

        job = run(scenario())
        assert job.status == FAILED
        assert "bad grid" in job.error

    def test_backlog_bound_raises_queue_full(self):
        async def scenario():
            # Workers never started: everything stays queued.
            queue = JobQueue(lambda k, p: None, max_pending=2)
            queue.submit("sweep", {})
            queue.submit("sweep", {})
            with pytest.raises(QueueFullError):
                queue.submit("sweep", {})

        run(scenario())

    def test_cancel_queued_job(self):
        async def scenario():
            queue = JobQueue(lambda k, p: None, max_pending=4)
            job = queue.submit("sweep", {})
            cancelled = queue.cancel(job.job_id)
            assert cancelled.status == CANCELLED
            with pytest.raises(UnknownJobError):
                queue.get("job-nonexistent")

        run(scenario())

    def test_history_eviction(self):
        async def scenario():
            queue = JobQueue(lambda k, p: None, max_pending=100, history=2)
            jobs = [queue.submit("sweep", {}) for _ in range(5)]
            for job in jobs:
                queue.cancel(job.job_id)
            return queue, jobs

        queue, jobs = run(scenario())
        assert len(queue.jobs()) == 2
        with pytest.raises(UnknownJobError):
            queue.get(jobs[0].job_id)

    def test_drain_with_exceeded_history_and_pending_jobs(self):
        """Regression: ``close()`` used to iterate ``self._jobs`` live.

        Cancelling a queued job settles it, settling runs ``_evict``, and
        once the settled count tops ``history`` eviction deletes entries
        from the dict being iterated — the old code raised
        ``RuntimeError: dictionary changed size during iteration`` on
        exactly this drain.
        """

        async def scenario():
            # Workers never started: submissions stay queued.
            queue = JobQueue(lambda k, p: None, max_pending=100, history=2)
            settled = [queue.submit("sweep", {}) for _ in range(2)]
            for job in settled:
                queue.cancel(job.job_id)  # history now exactly full
            pending = [queue.submit("sweep", {}) for _ in range(4)]
            await queue.close()  # each cancel here evicts an older entry
            return queue, pending

        queue, pending = run(scenario())
        assert all(
            job.status == CANCELLED for job in pending
        )  # every queued job was settled by the drain
        assert len(queue.jobs()) == 2  # history bound still holds

    def test_running_gauge_resets_when_worker_cancelled_mid_job(self):
        """Regression: the shutdown path left ``serve.jobs.running`` stale.

        The worker's CancelledError branch re-raised before the post-try
        gauge update ran, so a drain that tore down a mid-job worker
        exported a non-zero running count forever.
        """
        from repro.obs.metrics import metrics, reset_metrics

        reset_metrics()
        release = threading.Event()

        def runner(kind, params):
            release.wait(10.0)
            return None

        async def scenario():
            queue = JobQueue(runner)
            queue.start()
            job = queue.submit("sweep", {})
            while queue.active == 0:
                await asyncio.sleep(0.005)
            assert metrics().snapshot()["serve.jobs.running"]["value"] == 1
            # No drain budget: the worker task is cancelled mid-job.
            await queue.close(drain=False, timeout_s=0.0)
            release.set()  # let the executor thread finish
            return queue.get(job.job_id)

        job = run(scenario())
        assert job.status == FAILED
        assert metrics().snapshot()["serve.jobs.running"]["value"] == 0


class TestPrometheusRendering:
    def test_renders_all_instrument_kinds(self):
        snapshot = {
            "serve.requests": {"type": "counter", "value": 7},
            "serve.inflight": {"type": "gauge", "value": 2.0},
            "serve.latency_s": {"type": "timer", "count": 3, "total_s": 0.5},
        }
        text = render_prometheus(snapshot)
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 7" in text
        assert "repro_serve_inflight 2" in text
        assert "# TYPE repro_serve_latency_s summary" in text
        assert "repro_serve_latency_s_count 3" in text
        assert "repro_serve_latency_s_sum 0.5" in text

    def test_names_are_sanitised(self):
        text = render_prometheus(
            {"serve.requests.cmos.gains": {"type": "counter", "value": 1}}
        )
        assert "repro_serve_requests_cmos_gains 1" in text

    def test_multi_worker_rendering_labels_each_series(self):
        text = render_prometheus_multi(
            {
                0: {
                    "serve.requests": {"type": "counter", "value": 7},
                    "serve.latency_s": {"type": "timer", "count": 3, "total_s": 0.5},
                },
                1: {
                    "serve.requests": {"type": "counter", "value": 5},
                    "serve.inflight": {"type": "gauge", "value": 2.0},
                },
            }
        )
        # One TYPE line per metric, one labeled series per reporting worker.
        assert text.count("# TYPE repro_serve_requests counter") == 1
        assert 'repro_serve_requests{worker="0"} 7' in text
        assert 'repro_serve_requests{worker="1"} 5' in text
        assert 'repro_serve_inflight{worker="1"} 2' in text
        assert 'repro_serve_latency_s_count{worker="0"} 3' in text
        assert 'repro_serve_latency_s_sum{worker="0"} 0.5' in text
        # Workers that never touched a metric contribute no series for it.
        assert 'repro_serve_inflight{worker="0"}' not in text

    def test_response_reason_phrases(self):
        assert Response.json({}, status=429).reason == "Too Many Requests"
        assert Response.json({}, status=202).reason == "Accepted"
