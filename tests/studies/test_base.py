"""Unit tests for the shared case-study framework."""

import pytest

from repro.datasheets.schema import Category, ChipSpec
from repro.errors import DatasetError
from repro.studies.base import CaseStudy, StudyChip


def chip(name, node, gain, power):
    spec = ChipSpec(
        name=name, category=Category.ASIC, node_nm=node, area_mm2=10,
        frequency_mhz=300, tdp_w=power,
    )
    return StudyChip(
        spec=spec,
        measured={"perf": gain, "power_w": power, "eff": gain / power},
    )


@pytest.fixture
def study():
    return CaseStudy(
        name="toy",
        chips=[chip("a", 65, 10.0, 1.0), chip("b", 28, 40.0, 1.0)],
        performance_metric="perf",
        efficiency_metric="eff",
    )


class TestStudyChip:
    def test_metric_lookup(self):
        c = chip("a", 65, 10.0, 1.0)
        assert c.metric("perf") == 10.0

    def test_missing_metric_raises(self):
        c = chip("a", 65, 10.0, 1.0)
        with pytest.raises(DatasetError, match="no measured metric"):
            c.metric("latency")


class TestCaseStudy:
    def test_empty_study_rejected(self):
        with pytest.raises(DatasetError):
            CaseStudy("empty", [], "perf", "eff")

    def test_len_and_names(self, study):
        assert len(study) == 2
        assert study.names() == ["a", "b"]

    def test_performance_series_normalised(self, study, paper_model):
        series = study.performance_series(paper_model)
        assert series.points[0].gain == pytest.approx(1.0)
        assert series.points[1].gain == pytest.approx(4.0)

    def test_efficiency_series_uses_efficiency_metric(self, study, paper_model):
        series = study.efficiency_series(paper_model)
        assert series.points[1].gain == pytest.approx(4.0)
        assert series.metric == "energy_efficiency"

    def test_custom_baseline(self, study, paper_model):
        series = study.performance_series(paper_model, baseline="b")
        by_name = {p.name: p for p in series}
        assert by_name["b"].gain == pytest.approx(1.0)

    def test_summary_keys(self, study, paper_model):
        summary = study.summary(paper_model)
        assert {
            "chips", "max_performance_gain", "max_efficiency_gain",
            "max_physical_gain", "best_performer_csr", "best_efficiency_csr",
            "max_performance_csr", "max_efficiency_csr",
        } <= set(summary)
        assert summary["chips"] == 2.0

    def test_capped_flag_changes_physical(self, paper_model):
        chips = [chip("a", 65, 10.0, 0.5), chip("b", 16, 40.0, 0.5)]
        capped = CaseStudy("c", chips, "perf", "eff", capped=True)
        uncapped = CaseStudy("u", chips, "perf", "eff", capped=False)
        phys_capped = capped.performance_series(paper_model).points[1].physical
        phys_uncapped = uncapped.performance_series(paper_model).points[1].physical
        assert phys_capped != pytest.approx(phys_uncapped)
