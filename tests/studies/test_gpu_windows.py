"""Invariants of the GPU study's benchmark-window structure."""


from repro.studies import gpu_graphics as g


class TestWindows:
    def test_every_app_has_a_window(self):
        assert {name for name, _ in g.ALL_APPS} == set(g.APP_WINDOWS)

    def test_windows_are_ordered_and_in_range(self):
        for app, (start, end) in g.APP_WINDOWS.items():
            assert 2005 <= start <= end <= 2018, app

    def test_every_gpu_sees_at_least_five_apps(self):
        # Eq 3 needs >= 5 shared apps; each GPU must at least carry five.
        rates = g.frame_rates()
        for gpu, apps in rates.items():
            assert len(apps) >= 5, gpu

    def test_fig5_apps_cover_2011_to_2017(self):
        for app, _base in g.APPS:
            start, end = g.APP_WINDOWS[app]
            assert start <= 2011 and end >= 2017, app

    def test_adjacent_eras_share_enough_apps(self):
        # The closure chain requires every architecture to have a direct
        # (>= 5 shared apps) relation with at least one other architecture.
        measurements = g.architecture_measurements()
        for arch, apps in measurements.items():
            best_overlap = max(
                len(set(apps) & set(other_apps))
                for other, other_apps in measurements.items()
                if other != arch
            )
            assert best_overlap >= 5, arch

    def test_dataset_respects_windows(self):
        chips = g.dataset("Doom 2016 FHD", min_year=2006)
        years = [chip.spec.year for chip in chips]
        start, end = g.APP_WINDOWS["Doom 2016 FHD"]
        assert all(start <= year <= end for year in years)

    def test_twenty_four_apps(self):
        assert len(g.ALL_APPS) == 24
