"""Tests for the Section IV-E insight checks."""


from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders
from repro.studies.insights import (
    accelerators_still_ride_transistors,
    confined_domain_stagnation,
    default_insights,
    platform_transition_boost,
    specialization_plateaus_with_maturity,
)


class TestIndividualInsights:
    def test_maturity_insight_holds(self, paper_model):
        insight = specialization_plateaus_with_maturity(
            gpu_graphics.study(), fpga_cnn.study("alexnet"), paper_model
        )
        assert insight.holds
        assert insight.evidence["mature_end_slope"] < insight.evidence[
            "emerging_end_slope"
        ]

    def test_platform_boost_insight_holds(self, paper_model):
        insight = platform_transition_boost(bitcoin.study(), paper_model)
        assert insight.holds
        assert insight.evidence["largest_boundary_jump"] > 1.0

    def test_confined_domain_insight_holds(self, paper_model):
        insight = confined_domain_stagnation(bitcoin.asic_study(), paper_model)
        assert insight.holds
        # CSR spread across ASICs is a small fraction of the total gain.
        assert (
            insight.evidence["csr_spread"]
            < insight.evidence["total_gain"] / 10
        )

    def test_transistor_dependence_insight_holds(self, paper_model):
        insight = accelerators_still_ride_transistors(
            [video_decoders.study(), bitcoin.asic_study()], paper_model
        )
        assert insight.holds

    def test_describe_format(self, paper_model):
        insight = confined_domain_stagnation(bitcoin.asic_study(), paper_model)
        text = insight.describe()
        assert "holds" in text and "csr_spread" in text


class TestDefaultSuite:
    def test_all_default_insights_hold(self, paper_model):
        insights = default_insights(paper_model)
        assert len(insights) == 4
        for insight in insights:
            assert insight.holds, insight.describe()
