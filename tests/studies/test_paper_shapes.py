"""Golden shape tests: the Section IV headline observations.

These assert the *shape* of the paper's empirical results — who wins, by
roughly what factor, where CSR sits — not exact values (our substrate is a
reconstruction; see DESIGN.md section 4 for the expected bands and
EXPERIMENTS.md for measured-vs-paper numbers).
"""

import pytest

from repro.datasheets.schema import Category
from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders


@pytest.fixture(scope="module")
def model(paper_model):
    return paper_model


class TestVideoDecoders:
    """Paper Fig 4: mature domain; physical layer outpaces specialization."""

    @pytest.fixture(scope="class")
    def summary(self, paper_model):
        return video_decoders.study().summary(paper_model)

    def test_twelve_decoders(self, summary):
        assert summary["chips"] == 12

    def test_throughput_improved_about_64x(self, summary):
        assert 45 <= summary["max_performance_gain"] <= 90

    def test_efficiency_improved_about_34x(self, summary):
        assert 22 <= summary["max_efficiency_gain"] <= 50

    def test_best_performer_csr_below_one(self, summary):
        # "for the best performing ASICs, chip specialization did not
        # improve ... CSR was less than one".
        assert summary["best_performer_csr"] < 1.0

    def test_best_efficiency_csr_near_or_below_one(self, summary):
        assert summary["best_efficiency_csr"] < 1.6

    def test_transistor_budget_grew_about_36x(self):
        chips = video_decoders.dataset()
        counts = [c.spec.transistors for c in chips]
        assert 25 <= max(counts) / min(counts) <= 50

    def test_physical_gain_exceeds_measured_gain(self, summary):
        # The physical layer had higher impact than the specialization stack.
        assert summary["max_physical_gain"] > summary["max_performance_gain"]


class TestGpuGraphics:
    """Paper Figs 5-7: mature domain; CSR flat in a ~[0.95, 1.45] band."""

    def test_all_five_apps_have_4_to_6x_gains(self, paper_model):
        for app, _base in gpu_graphics.APPS:
            summary = gpu_graphics.study(app).summary(paper_model)
            assert 3.5 <= summary["max_performance_gain"] <= 7.0, app

    def test_efficiency_gains(self, paper_model):
        for app, _base in gpu_graphics.APPS:
            summary = gpu_graphics.study(app).summary(paper_model)
            assert 2.5 <= summary["max_efficiency_gain"] <= 8.0, app

    def test_csr_band(self, paper_model):
        for app, _base in gpu_graphics.APPS:
            series = gpu_graphics.study(app).performance_series(paper_model)
            for point in series:
                assert 0.7 <= point.csr <= 1.7, (app, point.name)

    def test_architecture_csr_matches_calibration(self, paper_model):
        csr = gpu_graphics.architecture_csr(paper_model)
        for arch, factor in gpu_graphics.ARCH_FACTOR.items():
            assert csr[arch] == pytest.approx(factor, rel=0.06), arch

    def test_first_architecture_on_new_node_dips(self, paper_model):
        # Fermi (first on 40nm) sits below its predecessor Tesla 2.
        csr = gpu_graphics.architecture_csr(paper_model)
        assert csr["Fermi"] < csr["Tesla 2"]

    def test_pascal_csr_roughly_tesla_csr(self, paper_model):
        # "the CSR for the 16nm Pascal is roughly the same as that of the
        # 65nm Tesla".
        csr = gpu_graphics.architecture_csr(paper_model)
        assert csr["Pascal"] == pytest.approx(csr["Tesla"], rel=0.25)

    def test_absolute_gains_grow_with_new_architectures(self, paper_model):
        relations = gpu_graphics.architecture_relations(paper_model)
        assert relations.gain("Pascal", "Tesla") > 5.0
        # Maxwell 2 includes a low-end part (GTX 750 Ti), so its geomean
        # only modestly beats Fermi's flagship-heavy group.
        assert relations.gain("Maxwell 2", "Fermi") > 1.0

    def test_relation_matrix_connects_all_architectures(self, paper_model):
        relations = gpu_graphics.architecture_relations(paper_model)
        for arch in relations.architectures:
            assert relations.has(arch, "Tesla")

    def test_eq4_transitive_closure_is_exercised(self, paper_model):
        # The 2006 Tesla and the 2016/17 Pascals share no benchmarked game
        # (the suites' testing windows never overlap), so their relation
        # can only come from the Eq 4 closure through intermediaries —
        # exactly the situation the paper built Eq 4 for.
        measurements = gpu_graphics.architecture_measurements(paper_model)
        assert not set(measurements["Tesla"]) & set(measurements["Pascal"])
        relations = gpu_graphics.architecture_relations(paper_model)
        assert not relations.is_direct("Tesla", "Pascal")
        assert relations.gain("Pascal", "Tesla") > 5.0


class TestFpgaCnn:
    """Paper Fig 8: emerging domain; CSR actually improves (up to ~6x)."""

    def test_alexnet_performance_about_24x(self, paper_model):
        summary = fpga_cnn.study("alexnet").summary(paper_model)
        assert 18 <= summary["max_performance_gain"] <= 30

    def test_alexnet_efficiency_about_14x(self, paper_model):
        summary = fpga_cnn.study("alexnet").summary(paper_model)
        assert 9 <= summary["max_efficiency_gain"] <= 18

    def test_vgg_gains_lower_than_alexnet(self, paper_model):
        alexnet = fpga_cnn.study("alexnet").summary(paper_model)
        vgg = fpga_cnn.study("vgg16").summary(paper_model)
        assert vgg["max_performance_gain"] < alexnet["max_performance_gain"]
        assert 6 <= vgg["max_performance_gain"] <= 12

    def test_csr_improves_multifold_unlike_mature_domains(self, paper_model):
        # Emerging domain: CSR grows well past 1 (paper: up to ~6x).
        summary = fpga_cnn.study("alexnet").summary(paper_model)
        assert 2.0 <= summary["max_performance_csr"] <= 8.0

    def test_utilization_table_shape(self):
        rows = fpga_cnn.utilization_table("alexnet")
        assert len(rows) == 11
        for row in rows:
            assert 0 < row["lut_pct"] <= 100
            assert 0 < row["dsp_pct"] <= 100
            assert 0 < row["bram_pct"] <= 100

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fpga_cnn.dataset("resnet")


class TestBitcoin:
    """Paper Figs 1, 9: platform jumps give CSR; ASICs ride CMOS."""

    def test_population_spans_all_platforms(self):
        chips = bitcoin.dataset()
        categories = {c.spec.category for c in chips}
        assert categories == {
            Category.CPU, Category.GPU, Category.FPGA, Category.ASIC,
        }

    def test_asic_beats_cpu_by_about_600000x(self, paper_model):
        summary = bitcoin.study().summary(paper_model)
        assert 3e5 <= summary["max_performance_gain"] <= 1.2e6

    def test_platform_transition_dominates_csr(self, paper_model):
        # CSR at the CPU->ASIC jump is orders of magnitude, but orders
        # *below* the raw gain (the rest is physical).
        summary = bitcoin.study().summary(paper_model)
        assert 1e3 <= summary["max_performance_csr"] <= 1e5
        assert summary["max_performance_csr"] < summary["max_performance_gain"] / 5

    def test_asic_series_gain_about_500x(self, paper_model):
        summary = bitcoin.asic_study().summary(paper_model)
        assert 300 <= summary["max_performance_gain"] <= 800

    def test_asic_csr_small_compared_to_gain(self, paper_model):
        # Fig 1: 510x performance vs 307x transistor performance -> CSR
        # far below the raw gain (ours lands at a few x).
        summary = bitcoin.asic_study().summary(paper_model)
        assert summary["max_performance_csr"] <= 10
        assert summary["max_performance_gain"] / summary["max_performance_csr"] > 50

    def test_two_efficiency_csr_regions(self, paper_model):
        # Region 1: early ASICs improve CSR; sharp drop at the fast node
        # transition; region 2: modern 28/16nm ASICs improve again.
        series = bitcoin.asic_study().efficiency_series(paper_model)
        points = list(series)
        by_name = {p.name: p for p in points}
        early_peak = by_name["Bitfury 55nm"].csr
        transition = by_name["BM1382"].csr
        modern_peak = by_name["BM1387"].csr
        assert early_peak > 1.5 * transition  # the drop
        assert modern_peak > 1.5 * transition  # the recovery

    def test_category_filter(self):
        asics = bitcoin.dataset(Category.ASIC)
        assert all(c.spec.category is Category.ASIC for c in asics)
        assert len(asics) == 12
