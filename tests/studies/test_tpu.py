"""Tests for the CPU baseline model and the TPU worked example (Table I)."""

import pytest

from repro.accel.cpu import evaluate_on_cpu
from repro.studies.tpu import (
    CONCEPT_MAPPING,
    TPU_NODE_NM,
    build_inference_kernel,
    tpu_case_study,
)
from repro.workloads import trd


class TestCpuBaseline:
    @pytest.fixture(scope="class")
    def kernel(self):
        return trd.build(n=32)

    def test_serial_issue(self, kernel):
        narrow = evaluate_on_cpu(kernel, issue_width=1)
        wide = evaluate_on_cpu(kernel, issue_width=4)
        assert narrow.cycles == pytest.approx(4 * wide.cycles, abs=4)

    def test_overhead_dominates_energy(self, kernel):
        # Hameed et al.: the arithmetic is a small slice of CPU energy.
        report = evaluate_on_cpu(kernel)
        assert report.overhead_share > 0.7

    def test_energy_identity(self, kernel):
        report = evaluate_on_cpu(kernel)
        assert report.energy_nj == pytest.approx(
            report.dynamic_energy_nj
            + report.leakage_power_w * report.runtime_s * 1e9
        )

    def test_newer_node_helps_cpu_too(self, kernel):
        old = evaluate_on_cpu(kernel, node_nm=45)
        new = evaluate_on_cpu(kernel, node_nm=7)
        assert new.energy_efficiency > old.energy_efficiency
        assert new.runtime_s < old.runtime_s

    def test_bad_issue_width(self, kernel):
        with pytest.raises(ValueError):
            evaluate_on_cpu(kernel, issue_width=0)

    def test_accelerator_beats_cpu_on_efficiency(self, kernel):
        from repro.accel.design import DesignPoint
        from repro.accel.power import evaluate_design

        cpu = evaluate_on_cpu(kernel, node_nm=45)
        accel = evaluate_design(kernel, DesignPoint(node_nm=45, partition=8))
        assert accel.energy_efficiency > 5 * cpu.energy_efficiency


class TestTpuCaseStudy:
    @pytest.fixture(scope="class")
    def case(self):
        return tpu_case_study()

    def test_inference_kernel_computes_relu_matvec(self):
        import numpy as np
        from repro.workloads._data import floats

        kernel = build_inference_kernel(n_inputs=4, n_outputs=2, seed=9)
        w = np.asarray(floats(9, 8)).reshape(2, 4)
        x = np.asarray(floats(10, 4))
        expected = np.maximum(w @ x, 0.0)
        assert np.allclose(kernel.output_values, expected)

    def test_same_node_everywhere(self, case):
        assert case.cpu.node_nm == TPU_NODE_NM
        assert case.generic.design.node_nm == TPU_NODE_NM
        assert case.specialized.design.node_nm == TPU_NODE_NM

    def test_headline_efficiency_vs_cpu(self, case):
        # Paper: TPUs improved DNN energy efficiency ~80x over CPUs on the
        # same-generation CMOS; our model lands in the same regime.
        assert 15 <= case.efficiency_gain_vs_cpu <= 120

    def test_specialization_gain_is_cmos_independent(self, case):
        # Node fixed: the whole gain is CSR by construction.
        assert case.efficiency_gain > 1.0
        assert case.throughput_gain > 10.0

    def test_streaming_improves_further(self, case):
        assert case.streaming_efficiency_gain >= case.efficiency_gain

    def test_concept_mapping_covers_table1(self):
        assert len(CONCEPT_MAPPING) == 9
        components = {key.split()[0] for key in CONCEPT_MAPPING}
        assert components == {"memory", "communication", "computation"}
