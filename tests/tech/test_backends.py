"""Tests for the technology-backend protocol, registry, and built-ins.

The load-bearing property: the ``cmos`` backend is the scalar oracle —
bit-identical to ``CmosPotentialModel.paper()`` — while the derived
backends (``finfet``, ``tfet``) move the device laws in the physically
expected directions through the same fit machinery.
"""

import math

import pytest

from repro.cmos.model import CmosPotentialModel
from repro.errors import ValidationError
from repro.tech import (
    DeviceParams,
    TechMetadata,
    backend_index,
    backend_names,
    derived_backend,
    get_backend,
    register_backend,
)
from repro.tech.base import SURFACE_NODES, TechBackend

BUILTINS = ("chiplet", "cmos", "finfet", "tfet")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(BUILTINS) <= set(backend_names())

    def test_names_are_sorted(self):
        assert backend_names() == sorted(backend_names())

    def test_unknown_backend_lists_valid_names(self):
        with pytest.raises(ValidationError, match="cmos"):
            get_backend("gallium_arsenide")

    def test_duplicate_registration_rejected_without_replace(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend(get_backend("cmos"))

    def test_index_carries_full_descriptions(self):
        index = backend_index()
        assert [entry["name"] for entry in index] == backend_names()
        for entry in index:
            assert entry["source"]
            assert isinstance(entry["parameters"], dict)
            assert len(entry["param_hash"]) == 64

    def test_metadata_rejects_non_identifier_names(self):
        with pytest.raises(ValidationError):
            TechMetadata(
                name="bad name!", display_name="x", description="x", source="x"
            )


class TestParamHash:
    def test_hash_is_stable_across_instances(self):
        from repro.tech import tfet_backend

        assert tfet_backend().param_hash() == tfet_backend().param_hash()
        assert tfet_backend().param_hash() == get_backend("tfet").param_hash()

    def test_hash_distinguishes_backends(self):
        hashes = {get_backend(name).param_hash() for name in BUILTINS}
        assert len(hashes) == len(BUILTINS)

    def test_hash_tracks_parameter_content(self):
        a = derived_backend(
            "probe", "Probe", "d", "s", DeviceParams(dynamic_energy_scale=0.5)
        )
        b = derived_backend(
            "probe", "Probe", "d", "s", DeviceParams(dynamic_energy_scale=0.6)
        )
        assert a.param_hash() != b.param_hash()


class TestCmosOracle:
    @pytest.mark.parametrize("node", [45.0, 16.0, 5.0])
    @pytest.mark.parametrize("tdp", [None, 100.0])
    def test_bit_identical_to_paper_model(self, node, tdp):
        paper = CmosPotentialModel.paper()
        backend_model = get_backend("cmos").model()
        assert backend_model.evaluate(
            node, 1000.0, area_mm2=100.0, tdp_w=tdp
        ) == paper.evaluate(node, 1000.0, area_mm2=100.0, tdp_w=tdp)

    def test_wall_limits_identity(self):
        from repro.wall.limits import _limits

        backend = get_backend("cmos")
        for row in _limits().values():
            assert backend.wall_limits(row) is row
            assert backend.die_count(row.max_die_mm2) == 1


class TestDerivedBackends:
    def test_tfet_cuts_dynamic_energy_and_clock(self):
        cmos = get_backend("cmos").model().scaling.scaling(5.0)
        tfet = get_backend("tfet").model().scaling.scaling(5.0)
        assert tfet.dynamic_energy < 0.2 * cmos.dynamic_energy
        assert tfet.leakage_power < cmos.leakage_power
        assert tfet.frequency < cmos.frequency
        assert tfet.vdd < cmos.vdd

    def test_finfet_moderately_better_and_faster(self):
        cmos = get_backend("cmos").model().scaling.scaling(5.0)
        finfet = get_backend("finfet").model().scaling.scaling(5.0)
        assert finfet.dynamic_energy < cmos.dynamic_energy
        assert finfet.leakage_power < cmos.leakage_power
        assert finfet.frequency > cmos.frequency

    def test_tfet_wall_limits_derate_the_clock(self):
        from repro.wall.limits import _limits

        backend = get_backend("tfet")
        row = _limits()["video_decoding"]
        derated = backend.wall_limits(row)
        assert derated.frequency_mhz < row.frequency_mhz
        assert derated.max_die_mm2 == row.max_die_mm2

    def test_low_power_devices_lift_tdp_limited_gains(self):
        # Under a tight power cap a TFET chip lights more transistors.
        cmos_gains = get_backend("cmos").model().evaluate(
            5.0, 1000.0, area_mm2=600.0, tdp_w=50.0
        )
        tfet_gains = get_backend("tfet").model().evaluate(
            5.0, 1000.0, area_mm2=600.0, tdp_w=50.0
        )
        assert tfet_gains.active_transistors > cmos_gains.active_transistors

    def test_device_params_reject_nonpositive_scales(self):
        with pytest.raises(ValidationError):
            DeviceParams(dynamic_energy_scale=0.0)
        with pytest.raises(ValidationError):
            DeviceParams(leakage_scale=-1.0)
        with pytest.raises(ValidationError):
            DeviceParams(frequency_scale=float("nan"))


class TestScalingSurfaces:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_density_surface_monotone_toward_newer_nodes(self, name):
        surface = get_backend(name).density_surface()
        values = [surface[node] for node in SURFACE_NODES]
        assert all(math.isfinite(v) and v > 0 for v in values)
        assert values == sorted(values)  # oldest -> newest node grows

    @pytest.mark.parametrize("name", BUILTINS)
    def test_tdp_surface_monotone_and_finite(self, name):
        surface = get_backend(name).tdp_surface()
        values = [surface[node] for node in SURFACE_NODES]
        assert all(math.isfinite(v) and v > 0 for v in values)
        for older, newer in zip(values, values[1:]):
            assert newer >= older  # era-stepped law: non-strict

    @pytest.mark.parametrize("name", BUILTINS)
    def test_frequency_energy_surface_points_physical(self, name):
        surface = get_backend(name).frequency_energy_surface()
        for node, point in surface.items():
            for key, value in point.items():
                assert math.isfinite(value) and value > 0, (node, key, value)


class TestModelCache:
    def test_model_is_built_once_and_cached(self):
        backend = get_backend("finfet")
        assert backend.model() is backend.model()

    def test_prime_seeds_the_cache(self):
        from repro.tech import finfet_backend

        backend = finfet_backend()  # fresh instance, empty cache
        model = CmosPotentialModel.paper()
        backend.prime(model)
        assert backend.model() is model

    def test_base_backend_requires_build_model(self):
        backend = TechBackend(
            TechMetadata(name="stub", display_name="s", description="d", source="s")
        )
        with pytest.raises(NotImplementedError):
            backend.model()
