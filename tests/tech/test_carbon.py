"""Tests for the carbon overlay (embodied + operational gCO2e)."""

import pytest

from repro.errors import ValidationError
from repro.tech import CarbonParams, backend_carbon, carbon_footprint, get_backend


class TestCarbonFootprint:
    def test_total_is_exactly_the_sum(self):
        report = carbon_footprint(100.0, 5.0, 50.0)
        assert report.total_gco2e == report.embodied_gco2e + report.operational_gco2e

    def test_components_non_negative(self):
        report = carbon_footprint(1.0, 45.0, 0.0)
        assert report.embodied_gco2e > 0
        assert report.operational_gco2e == 0.0

    def test_newer_nodes_cost_more_embodied_carbon(self):
        old = carbon_footprint(100.0, 45.0, 0.0)
        new = carbon_footprint(100.0, 5.0, 0.0)
        assert new.embodied_gco2e > old.embodied_gco2e

    def test_operational_scales_linearly_with_power(self):
        one = carbon_footprint(100.0, 5.0, 1.0)
        ten = carbon_footprint(100.0, 5.0, 10.0)
        assert ten.operational_gco2e == pytest.approx(10 * one.operational_gco2e)

    def test_poor_yield_inflates_embodied(self):
        good = carbon_footprint(100.0, 5.0, 0.0, die_yield=1.0)
        poor = carbon_footprint(100.0, 5.0, 0.0, die_yield=0.5)
        assert poor.embodied_gco2e == pytest.approx(2 * good.embodied_gco2e)

    def test_packaging_adder_per_extra_die(self):
        params = CarbonParams(packaging_overhead_fraction=0.05)
        mono = carbon_footprint(100.0, 5.0, 0.0, params, die_count=1)
        quad = carbon_footprint(100.0, 5.0, 0.0, params, die_count=4)
        assert quad.embodied_gco2e == pytest.approx(1.15 * mono.embodied_gco2e)

    def test_input_validation(self):
        with pytest.raises(ValidationError):
            carbon_footprint(-1.0, 5.0, 0.0)
        with pytest.raises(ValidationError):
            carbon_footprint(100.0, 5.0, -1.0)
        with pytest.raises(ValidationError):
            carbon_footprint(100.0, 5.0, 0.0, die_yield=0.0)
        with pytest.raises(ValidationError):
            carbon_footprint(100.0, 5.0, 0.0, die_count=0)

    def test_params_validation(self):
        with pytest.raises(ValidationError):
            CarbonParams(utilization=1.5)
        with pytest.raises(ValidationError):
            CarbonParams(lifetime_hours=0.0)
        with pytest.raises(ValidationError):
            CarbonParams(packaging_overhead_fraction=-0.1)


class TestBackendCarbon:
    def test_monolithic_backend_has_unit_yield(self):
        report = backend_carbon(get_backend("cmos"), 5.0, 100.0, 50.0)
        assert report.die_count == 1
        assert report.die_yield == 1.0

    def test_chiplet_backend_splits_and_amortises_yield(self):
        from repro.tech.chiplet import RETICLE_LIMIT_MM2, murphy_yield

        area = 2 * RETICLE_LIMIT_MM2
        report = backend_carbon(get_backend("chiplet"), 5.0, area, 50.0)
        assert report.die_count == 2
        assert report.die_yield == murphy_yield(area / 2)

    def test_chiplet_beats_monolithic_embodied_at_reticle_scale(self):
        # The economic argument for chiplets: two small dies yield far
        # better than one huge one, beating the packaging adder.
        from repro.tech.chiplet import RETICLE_LIMIT_MM2, murphy_yield

        area = 2 * RETICLE_LIMIT_MM2
        split = backend_carbon(get_backend("chiplet"), 5.0, area, 0.0)
        mono = carbon_footprint(area, 5.0, 0.0, die_yield=murphy_yield(area))
        assert split.embodied_gco2e < mono.embodied_gco2e
