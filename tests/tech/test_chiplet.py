"""Tests for the chiplet backend's disaggregation mechanics."""

import math

import pytest

from repro.errors import ValidationError
from repro.tech import ChipletPotentialModel, chiplet_backend, get_backend
from repro.tech.chiplet import (
    DEFAULT_MAX_CHIPLETS,
    RETICLE_LIMIT_MM2,
    murphy_yield,
)


@pytest.fixture(scope="module")
def model():
    return get_backend("chiplet").model()


@pytest.fixture(scope="module")
def base(model):
    return get_backend("cmos").model()


class TestDieCount:
    def test_under_reticle_is_monolithic(self, model):
        assert model.die_count(100.0) == 1
        assert model.die_count(RETICLE_LIMIT_MM2) == 1

    def test_over_reticle_splits(self, model):
        assert model.die_count(RETICLE_LIMIT_MM2 + 1.0) == 2
        assert model.die_count(3 * RETICLE_LIMIT_MM2) == 3

    def test_capped_at_max_chiplets(self, model):
        assert model.die_count(100 * RETICLE_LIMIT_MM2) == DEFAULT_MAX_CHIPLETS

    def test_backend_delegates_to_model(self, model):
        backend = get_backend("chiplet")
        assert backend.die_count(2000.0) == model.die_count(2000.0)


class TestEvaluate:
    def test_small_die_delegates_exactly(self, model, base):
        assert model.evaluate(5.0, 1000.0, area_mm2=600.0) == base.evaluate(
            5.0, 1000.0, area_mm2=600.0
        )

    def test_explicit_transistor_count_bypasses_disaggregation(self, model, base):
        # Historical chips with disclosed counts (the CSR scatter) must
        # evaluate exactly as under the base technology.
        kwargs = dict(area_mm2=2000.0, transistors=1e10)
        assert model.evaluate(5.0, 1000.0, **kwargs) == base.evaluate(
            5.0, 1000.0, **kwargs
        )

    def test_disaggregation_is_a_density_win(self, model, base):
        # n dies of A/n hold n^(1-0.877)x more transistors than one die
        # of area A under the sublinear Fig 3b law.
        area = 2 * RETICLE_LIMIT_MM2
        split = model.evaluate(5.0, 1000.0, area_mm2=area)
        mono = base.evaluate(5.0, 1000.0, area_mm2=area)
        assert split.potential_transistors > mono.potential_transistors
        expected = 2 ** (1.0 - base.density_fit.exponent)
        assert split.potential_transistors / mono.potential_transistors == (
            pytest.approx(expected)
        )

    def test_links_tax_throughput_and_packaging_taxes_power(self, model):
        area = 2 * RETICLE_LIMIT_MM2
        taxed = model.evaluate(5.0, 1000.0, area_mm2=area)
        untaxed = ChipletPotentialModel(
            get_backend("cmos").model(),
            comm_efficiency=1.0,
            packaging_overhead=0.0,
        ).evaluate(5.0, 1000.0, area_mm2=area)
        assert taxed.active_transistors < untaxed.active_transistors
        assert taxed.power_w > untaxed.power_w

    def test_constructor_validation(self):
        base = get_backend("cmos").model()
        with pytest.raises(ValidationError):
            ChipletPotentialModel(base, reticle_limit_mm2=0.0)
        with pytest.raises(ValidationError):
            ChipletPotentialModel(base, max_chiplets=0)


class TestWallEnvelope:
    def test_wall_limits_lift_the_die_ceiling(self):
        from repro.wall.limits import _limits

        backend = get_backend("chiplet")
        row = _limits()["video_decoding"]
        lifted = backend.wall_limits(row)
        assert lifted.max_die_mm2 == row.max_die_mm2 * DEFAULT_MAX_CHIPLETS

    def test_candidates_keep_monolithic_on_the_table(self):
        from repro.wall.limits import _limits

        backend = get_backend("chiplet")
        row = _limits()["bitcoin_mining"]
        candidates = backend.wall_limit_candidates(row)
        assert row in candidates and backend.wall_limits(row) in candidates

    def test_tdp_bound_walls_never_regress_below_cmos(self):
        # Disaggregation is an option, not a mandate: taking the best
        # candidate means the chiplet wall >= the monolithic CMOS wall.
        from repro.tech.scenarios import wall_reports

        cmos = {(r.domain, r.metric): r for r in wall_reports("cmos")}
        for report in wall_reports("chiplet"):
            base = cmos[(report.domain, report.metric)]
            assert report.physical_limit >= base.physical_limit * (1 - 1e-12)


class TestYield:
    def test_yield_decreases_with_area(self):
        areas = [10.0, 100.0, 500.0, 858.0]
        yields = [murphy_yield(a) for a in areas]
        assert yields == sorted(yields, reverse=True)
        assert all(0.0 < y <= 1.0 for y in yields)

    def test_yield_rejects_nonpositive_area(self):
        with pytest.raises(ValidationError):
            murphy_yield(0.0)

    def test_backend_die_yield_uses_per_die_area(self):
        backend = chiplet_backend()
        assert backend.die_yield(100.0) == murphy_yield(100.0)
