"""Tests for the "does the wall move?" scenario engine.

Acceptance properties from the issue: the ``cmos`` scenario is
bit-identical to the base Figs 15-16 artifact, and every non-CMOS
built-in produces wall projections plus a nonzero cross-tech delta.
"""

import math

import pytest

from repro.tech import backend_names
from repro.tech.scenarios import (
    WALL_METRICS,
    carbon_rows,
    csr_rows,
    delta_payload,
    scenario_payload,
    table5_rows,
    wall_projection_rows,
)
from repro.wall.limits import _limits

NON_CMOS = tuple(n for n in ("finfet", "tfet", "chiplet") if n in backend_names())


class TestCmosOracle:
    def test_cmos_rows_bit_identical_to_fig15_16_artifact(self):
        from repro.reporting.figures import fig15_16_projections

        assert wall_projection_rows("cmos") == fig15_16_projections()

    def test_cmos_delta_is_exactly_unity(self):
        payload = delta_payload("cmos")
        for row in payload["rows"]:
            assert row["physical_limit_ratio"] == 1.0
            assert row["projected_log_ratio"] == 1.0
            assert row["projected_linear_ratio"] == 1.0


class TestWallProjections:
    @pytest.mark.parametrize("tech", NON_CMOS)
    def test_full_domain_metric_grid(self, tech):
        rows = wall_projection_rows(tech)
        keys = {(r["domain"], r["metric"]) for r in rows}
        assert keys == {
            (domain, metric)
            for domain in _limits()
            for metric in WALL_METRICS
        }
        for row in rows:
            assert math.isfinite(row["physical_limit"]) and row["physical_limit"] > 0
            assert row["projected_log"] >= row["current_best"]
            assert row["projected_linear"] >= row["current_best"]

    @pytest.mark.parametrize("tech", NON_CMOS)
    def test_delta_payload_is_nonzero_somewhere(self, tech):
        payload = delta_payload(tech)
        assert payload["tech"] == tech
        assert payload["baseline"] == "cmos"
        assert len(payload["param_hash"]) == 64
        ratios = [
            row[key]
            for row in payload["rows"]
            for key in (
                "physical_limit_ratio",
                "projected_log_ratio",
                "projected_linear_ratio",
            )
        ]
        assert all(math.isfinite(r) and r > 0 for r in ratios)
        # "does the wall move?" — yes, somewhere, for every non-CMOS tech.
        assert any(abs(r - 1.0) > 1e-6 for r in ratios)
        assert len(payload["summary"]) == len(payload["rows"])
        assert all(tech in line for line in payload["summary"])

    def test_wall_shift_years_follow_the_ratio_sign(self):
        payload = delta_payload("tfet")
        for row in payload["rows"]:
            years = row["wall_shift_years_linear"]
            if row["metric"] != "performance":
                assert years is None
                continue
            if years is None:
                continue  # domain without a usable historical pace
            ratio = row["projected_linear_ratio"]
            assert (years > 0) == (ratio > 1.0) or ratio == 1.0


class TestScenarioPayload:
    @pytest.mark.parametrize("tech", NON_CMOS)
    def test_payload_shape(self, tech):
        payload = scenario_payload(tech)
        assert payload["tech"]["name"] == tech
        assert {r["domain"] for r in payload["table5"]} == set(_limits())
        assert set(payload["csr"]) == set(_limits())
        assert set(payload["carbon"]) == set(_limits())

    def test_table5_carries_die_counts(self):
        rows = {r["domain"]: r for r in table5_rows("chiplet")}
        assert all(r["die_count"] >= 1 for r in rows.values())
        # Lifted GPU/ASIC envelopes exceed one reticle -> a real split.
        assert rows["gaming_graphics"]["die_count"] > 1
        assert rows["bitcoin_mining"]["die_count"] > 1

    def test_csr_rows_cover_both_metrics(self):
        rows = csr_rows("finfet")
        for block in rows.values():
            assert block["performance"] and block["efficiency"]
            for point in block["performance"]:
                assert set(point) == {
                    "name", "node_nm", "year", "gain", "physical", "csr"
                }

    @pytest.mark.parametrize("tech", ("cmos",) + NON_CMOS)
    def test_carbon_rows_physical(self, tech):
        for domain, row in carbon_rows(tech).items():
            assert row["total_gco2e"] == pytest.approx(
                row["embodied_gco2e"] + row["operational_gco2e"]
            )
            assert row["embodied_gco2e"] > 0
            assert row["operational_gco2e"] >= 0
            assert row["gco2e_per_throughput"] >= 0
