"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_ERROR, build_parser, main
from repro.errors import ProjectionError


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "quantum"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "Bitcoin Mining" not in out  # Table IV uses app names
        assert "Advanced Encryption Standard" in out

    @pytest.mark.parametrize("name", ["video", "gpu", "cnn", "bitcoin"])
    def test_study(self, capsys, name):
        assert main(["study", name]) == 0
        out = capsys.readouterr().out
        assert "csr_x" in out
        assert "summary:" in out

    def test_wall(self, capsys):
        assert main(["wall"]) == 0
        out = capsys.readouterr().out
        assert "video_decoding" in out
        assert "headroom" in out

    def test_maturity(self, capsys):
        assert main(["maturity"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin_asic" in out

    def test_insights(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert "holds" in out

    def test_plot_fig13(self, capsys):
        assert main(["plot", "fig13"]) == 0
        assert "45nm" in capsys.readouterr().out

    def test_plot_fig13_parallel_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dse-cache")
        args = ["plot", "fig13", "--jobs", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "[dse]" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        # Warm rerun is served entirely from the persistent cache. (The
        # cold run may show a few hits too: workers share the store.)
        assert "[100%]" not in cold
        assert "[100%]" in warm

    def test_plot_fig13_no_cache_wins(self, tmp_path, capsys):
        cache_dir = tmp_path / "dse-cache"
        assert main([
            "plot", "fig13", "--cache-dir", str(cache_dir), "--no-cache",
        ]) == 0
        assert "[dse]" in capsys.readouterr().out
        assert not cache_dir.exists()

    def test_plot_fig15(self, capsys):
        assert main(["plot", "fig15"]) == 0
        assert "frontier" in capsys.readouterr().out

    def test_export_subset_via_module(self, tmp_path, capsys):
        # Full export is exercised by test_export; here just the wiring.
        assert main(["export", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table5.json" in out
        envelope = json.loads((tmp_path / "table5.json").read_text())
        assert len(envelope["data"]) == 4
        assert envelope["manifest"]["command"] == "export"

    def test_export_only_subset(self, tmp_path, capsys):
        out_dir = tmp_path / "subset"
        assert main(
            ["export", "--out", str(out_dir), "--only", "table5,fig3a"]
        ) == 0
        capsys.readouterr()
        written = {p.name for p in out_dir.glob("*.json")}
        assert written == {"table5.json", "fig3a.json"}

    def test_export_tech_selects_backend_family(self, tmp_path, capsys):
        out_dir = tmp_path / "tfet"
        assert main(["export", "--out", str(out_dir), "--tech", "tfet"]) == 0
        capsys.readouterr()
        written = {p.name for p in out_dir.glob("*.json")}
        assert written == {
            "fig15_16_tfet.json", "table5_tfet.json", "csr_tfet.json",
            "tech_tfet.json", "tech_delta_tfet.json",
        }
        block = json.loads((out_dir / "tech_delta_tfet.json").read_text())
        assert block["manifest"]["config_hashes"]["tech_backend"] == "tfet"

    def test_export_only_per_tech_name_without_tech_flag(self, tmp_path, capsys):
        out_dir = tmp_path / "mixed"
        assert main(
            ["export", "--out", str(out_dir), "--only", "tech_delta_chiplet,table5"]
        ) == 0
        capsys.readouterr()
        written = {p.name for p in out_dir.glob("*.json")}
        assert written == {"tech_delta_chiplet.json", "table5.json"}

    def test_export_unknown_tech_reports_error(self, tmp_path, capsys):
        assert main(
            ["export", "--out", str(tmp_path / "x"), "--tech", "graphene"]
        ) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "graphene" in err and "cmos" in err

    def test_plot_fig15_tech(self, capsys):
        assert main(["plot", "fig15", "--tech", "tfet"]) == 0
        out = capsys.readouterr().out
        assert "[tfet]" in out


class TestObservability:
    """The --profile/--trace-out flags, -v logging, and `stats`."""

    @pytest.fixture(autouse=True)
    def isolated_obs(self, monkeypatch, tmp_path):
        """Point the metrics snapshot at a temp dir; undo logging config."""
        import logging

        from repro.obs.log import ROOT_LOGGER

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "obs-cache"))
        yield
        root = logging.getLogger(ROOT_LOGGER)
        for handler in list(root.handlers):
            if handler.get_name() == "repro-obs":
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_plot_fig13_profile_and_trace(self, tmp_path, capsys):
        # The issue's acceptance command: profile table + valid Chrome
        # trace with parent and worker spans.
        trace_path = tmp_path / "trace.json"
        assert main([
            "plot", "fig13", "--jobs", "2",
            "--profile", "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "=== profile: per-stage time ===" in out
        assert f"wrote trace {trace_path}" in out
        assert "schedule" in out and "evaluate" in out

        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
        names = {e["name"] for e in events}
        assert {"sweep", "schedule", "evaluate", "cache.lookup"} <= names
        # Spans came from the parent *and* its worker processes.
        assert len({e["pid"] for e in events}) >= 2

    def test_trace_out_without_profile_skips_table(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["plot", "fig13", "--trace-out", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out
        assert "per-stage time" not in out
        assert trace_path.exists()

    def test_tracer_uninstalled_after_command(self, tmp_path):
        from repro.obs.trace import get_tracer

        assert main(
            ["plot", "fig13", "--trace-out", str(tmp_path / "t.json")]
        ) == 0
        assert get_tracer() is None

    def test_stats_before_any_run(self, capsys):
        # Regression: used to dump a traceback / silently succeed.
        assert main(["stats"]) == 1
        captured = capsys.readouterr()
        assert "no metrics snapshot found" in captured.err
        assert "Traceback" not in captured.err

    def test_stats_with_corrupt_snapshot(self, capsys):
        from repro.cli import _metrics_path

        path = _metrics_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert main(["stats"]) == 1
        captured = capsys.readouterr()
        assert "unreadable" in captured.err
        assert "Traceback" not in captured.err

    def test_stats_renders_last_run_snapshot(self, capsys):
        assert main(["plot", "fig13", "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "=== metrics snapshot" in out
        assert "command:  plot" in out
        assert "engine.design_points" in out
        assert "engine.elapsed_s" in out

    def test_stats_json_output(self, capsys):
        assert main(["plot", "fig13"]) == 0
        capsys.readouterr()
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "plot"
        metrics = payload["metrics"]
        assert metrics["engine.operations"]["type"] == "counter"
        assert metrics["engine.operations"]["value"] >= 1

    def test_verbose_flag_enables_structured_logs(self, capsys):
        assert main(["-v", "plot", "fig13"]) == 0
        err = capsys.readouterr().err
        assert "repro.accel.engine" in err
        assert "sweep.done" in err
        assert "kernel=" in err


class TestReportCommand:
    """The `report` command: ledger listing, run reports, drift compares."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def _export(self, tmp_path, capsys, sub):
        assert main(
            ["export", "--out", str(tmp_path / sub), "--only", "table5,fig3a"]
        ) == 0
        capsys.readouterr()

    def _ids(self, capsys):
        assert main(["report", "--ids"]) == 0
        return capsys.readouterr().out.split()

    def test_empty_ledger_message(self, capsys):
        assert main(["report"]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_listing_and_single_run_report(self, tmp_path, capsys):
        self._export(tmp_path, capsys, "a")
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "=== run ledger" in out
        assert "export" in out
        (run_id,) = self._ids(capsys)
        assert main(["report", run_id]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "Golden numbers" in out

    def test_compare_identical_runs_zero_drift(self, tmp_path, capsys):
        # The acceptance invariant: two exports of the same config drift-free.
        self._export(tmp_path, capsys, "a")
        self._export(tmp_path, capsys, "b")
        id_a, id_b = self._ids(capsys)
        assert main(["report", "--compare", id_a, id_b]) == 0
        out = capsys.readouterr().out
        assert "zero drift" in out

    def test_compare_perturbed_run_names_quantity(self, tmp_path, capsys):
        from repro.provenance.manifest import RunLedger

        self._export(tmp_path, capsys, "a")
        self._export(tmp_path, capsys, "b")
        id_a, id_b = self._ids(capsys)
        ledger = RunLedger()
        tampered = ledger.get(id_b)
        tampered.golden["table5.0.projected_log"] = 123.456
        ledger.record(tampered)
        assert main(["report", "--compare", id_a, id_b]) == 1
        out = capsys.readouterr().out
        assert "table5.0.projected_log" in out

    def test_report_html_written_to_file(self, tmp_path, capsys):
        self._export(tmp_path, capsys, "a")
        (run_id,) = self._ids(capsys)
        out_file = tmp_path / "report.html"
        assert main(
            ["report", run_id, "--format", "html", "--out", str(out_file)]
        ) == 0
        assert "wrote report" in capsys.readouterr().out
        html = out_file.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert run_id in html

    def test_prune_keeps_newest(self, tmp_path, capsys):
        for sub in ("a", "b", "c"):
            self._export(tmp_path, capsys, sub)
        ids = self._ids(capsys)
        assert len(ids) == 3
        assert main(["report", "--prune", "1"]) == 0
        assert "pruned 2 runs" in capsys.readouterr().out
        assert self._ids(capsys) == ids[-1:]

    def test_unknown_run_id_is_oneline_error(self, capsys):
        assert main(["report", "nosuchrun"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestErrorHandling:
    """Regression: ReproError used to escape main() as a raw traceback."""

    def test_reproerror_prints_one_line_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        from repro import cli

        def boom(args):
            raise ProjectionError("degenerate frontier in test")

        monkeypatch.setattr(cli, "_cmd_wall", boom)
        assert main(["wall"]) == EXIT_ERROR
        captured = capsys.readouterr()
        assert captured.err.strip() == "error: degenerate frontier in test"
        assert "Traceback" not in captured.err

    def test_non_repro_errors_still_propagate(self, monkeypatch):
        from repro import cli

        def boom(args):
            raise RuntimeError("a genuine bug")

        monkeypatch.setattr(cli, "_cmd_wall", boom)
        with pytest.raises(RuntimeError):
            main(["wall"])

    def test_unknown_check_subsystem_reports_error(self, capsys):
        assert main(["check", "nosuch"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nosuch" in err


class TestCheckCommand:
    def test_check_subset_passes(self, capsys):
        assert main(["check", "csr", "wall"]) == 0
        out = capsys.readouterr().out
        assert "csr/eq2-invariant" in out
        assert "wall/predict-clamp" in out
        assert "FAIL" not in out
        assert "cmos/" not in out  # subset filtering works

    def test_check_tech_subsystem(self, capsys):
        assert main(["check", "tech", "--tech", "tfet"]) == 0
        out = capsys.readouterr().out
        assert "tech/surfaces-monotone" in out
        assert "tech/cmos-bit-identical" in out
        assert "tech/wall-shift-finite" in out
        assert "FAIL" not in out

    def test_check_failure_exits_nonzero(self, monkeypatch, capsys):
        from repro import check as check_module

        def failing():
            raise AssertionError("invariant broken in test")

        monkeypatch.setattr(
            check_module, "CHECKS", (("csr", "doomed", failing),)
        )
        assert main(["check"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "invariant broken in test" in out
        assert "0/1 checks passed" in out
