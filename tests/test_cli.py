"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "quantum"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "Bitcoin Mining" not in out  # Table IV uses app names
        assert "Advanced Encryption Standard" in out

    @pytest.mark.parametrize("name", ["video", "gpu", "cnn", "bitcoin"])
    def test_study(self, capsys, name):
        assert main(["study", name]) == 0
        out = capsys.readouterr().out
        assert "csr_x" in out
        assert "summary:" in out

    def test_wall(self, capsys):
        assert main(["wall"]) == 0
        out = capsys.readouterr().out
        assert "video_decoding" in out
        assert "headroom" in out

    def test_maturity(self, capsys):
        assert main(["maturity"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin_asic" in out

    def test_insights(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert "holds" in out

    def test_plot_fig13(self, capsys):
        assert main(["plot", "fig13"]) == 0
        assert "45nm" in capsys.readouterr().out

    def test_plot_fig13_parallel_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dse-cache")
        args = ["plot", "fig13", "--jobs", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "[dse]" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        # Warm rerun is served entirely from the persistent cache. (The
        # cold run may show a few hits too: workers share the store.)
        assert "[100%]" not in cold
        assert "[100%]" in warm

    def test_plot_fig13_no_cache_wins(self, tmp_path, capsys):
        cache_dir = tmp_path / "dse-cache"
        assert main([
            "plot", "fig13", "--cache-dir", str(cache_dir), "--no-cache",
        ]) == 0
        assert "[dse]" in capsys.readouterr().out
        assert not cache_dir.exists()

    def test_plot_fig15(self, capsys):
        assert main(["plot", "fig15"]) == 0
        assert "frontier" in capsys.readouterr().out

    def test_export_subset_via_module(self, tmp_path, capsys):
        # Full export is exercised by test_export; here just the wiring.
        assert main(["export", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table5.json" in out
        payload = json.loads((tmp_path / "table5.json").read_text())
        assert len(payload) == 4
