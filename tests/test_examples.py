"""Smoke tests: every example script must run cleanly and print sensibly."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report, not just a banner


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "bitcoin_history",
        "accelerator_dse",
        "wall_projection",
        "custom_domain_study",
    } <= names
