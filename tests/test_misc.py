"""Tests for the small support modules: quantities, errors, package API."""

import pytest

import repro
from repro import quantities as q
from repro.errors import (
    DatasetError,
    FitError,
    GraphStructureError,
    InvalidChipSpecError,
    InvalidDesignPointError,
    ProjectionError,
    ReproError,
    UnknownNodeError,
)


class TestQuantities:
    def test_frequency_conversions(self):
        assert q.ghz(1.5) == 1500.0
        assert q.mhz(300) == 300.0
        assert q.khz(500) == 0.5
        assert q.mhz_to_hz(1.0) == 1e6

    def test_power_conversions(self):
        assert q.milliwatts(250) == 0.25
        assert q.watts(7) == 7.0

    def test_energy_conversions(self):
        assert q.picojoules(1000) == 1.0
        assert q.nanojoules(2.5) == 2.5
        assert q.joules_from_nj(1e9) == pytest.approx(1.0)

    def test_scales(self):
        assert q.giga(2) == 2e9
        assert q.mega(3) == 3e6
        assert q.mm2(100.0) == 100.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            UnknownNodeError(3, (180.0, 5.0)),
            InvalidChipSpecError("bad"),
            InvalidDesignPointError("bad"),
            GraphStructureError("bad"),
            FitError("bad"),
            ProjectionError("bad"),
            DatasetError("bad"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_unknown_node_is_value_error(self):
        assert isinstance(UnknownNodeError(3, (180.0, 5.0)), ValueError)

    def test_fit_error_is_runtime_error(self):
        assert isinstance(FitError("x"), RuntimeError)


class TestPackageApi:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        model = repro.CmosPotentialModel.paper()
        old = model.evaluate(45, 1000, area_mm2=100, tdp_w=100)
        new = model.evaluate(5, 1000, area_mm2=100, tdp_w=100)
        assert repro.csr(250.0, new.throughput / old.throughput) > 0
