"""Unit tests for the reusable numerical guards in :mod:`repro.validate`."""

import math
import warnings

import numpy as np
import pytest

from repro.errors import FitError, ProjectionError, ReproError, ValidationError
from repro.validate import (
    MAX_CONDITION_NUMBER,
    condition_number,
    guarded_numpy,
    require_all_finite,
    require_finite,
    require_fraction,
    require_monotone,
    require_positive,
    require_well_conditioned,
)


class TestScalarGuards:
    def test_finite_passes_through(self):
        assert require_finite(3.5) == 3.5
        assert require_finite(-1) == -1.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_finite_rejects(self, bad):
        with pytest.raises(ValidationError):
            require_finite(bad)

    def test_finite_rejects_non_numbers(self):
        with pytest.raises(ValidationError):
            require_finite("not a number")

    def test_error_class_is_customisable(self):
        with pytest.raises(ProjectionError):
            require_finite(float("nan"), "x", ProjectionError)
        with pytest.raises(FitError):
            require_positive(-1.0, "x", FitError)

    def test_validation_error_is_both_repro_and_value_error(self):
        with pytest.raises(ReproError):
            require_positive(0.0)
        with pytest.raises(ValueError):
            require_positive(0.0)

    @pytest.mark.parametrize("bad", [0.0, -2.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValidationError):
            require_positive(bad)

    def test_positive_names_the_quantity(self):
        with pytest.raises(ValidationError, match="die area"):
            require_positive(-1.0, "die area")

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, float("nan")])
    def test_fraction_rejects(self, bad):
        with pytest.raises(ValidationError):
            require_fraction(bad)

    def test_fraction_accepts_boundary(self):
        assert require_fraction(1.0) == 1.0
        assert require_fraction(1e-9) == 1e-9


class TestArrayGuards:
    def test_all_finite_passes(self):
        out = require_all_finite([1.0, 2.0, 3.0])
        assert isinstance(out, np.ndarray)

    def test_all_finite_rejects_and_reports_first(self):
        with pytest.raises(ValidationError, match="non-finite"):
            require_all_finite([1.0, float("nan"), float("inf")])

    def test_empty_is_fine(self):
        assert require_all_finite([]).size == 0

    def test_monotone_strict(self):
        assert require_monotone([1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]
        with pytest.raises(ValidationError):
            require_monotone([1.0, 2.0, 2.0])
        with pytest.raises(ValidationError):
            require_monotone([1.0, 0.5])

    def test_monotone_non_strict_allows_plateaus(self):
        require_monotone([1.0, 2.0, 2.0], strict=False)
        with pytest.raises(ValidationError):
            require_monotone([2.0, 1.0], strict=False)

    def test_monotone_trivial_sequences(self):
        require_monotone([])
        require_monotone([42.0])


class TestConditioning:
    def test_well_spread_design_is_well_conditioned(self):
        cond = require_well_conditioned([1.0, 2.0, 4.0, 8.0])
        assert cond < 100.0

    def test_degenerate_design_rejected(self):
        with pytest.raises(ValidationError, match="degenerate"):
            require_well_conditioned([3.0, 3.0, 3.0])

    def test_sub_minimal_design_rejected(self):
        with pytest.raises(ValidationError, match=">= 2"):
            require_well_conditioned([1.0])

    def test_near_collinear_design_rejected(self):
        design = [1e9, 1e9 + 1e-5]
        assert condition_number(design) > MAX_CONDITION_NUMBER
        with pytest.raises(ValidationError, match="ill-conditioned"):
            require_well_conditioned(design)

    def test_non_finite_design_is_infinitely_conditioned(self):
        assert condition_number([1.0, float("nan")]) == float("inf")

    def test_2d_design_matrix_accepted(self):
        design = np.column_stack([[1.0, 2.0, 3.0], [1.0, 1.0, 1.0]])
        assert math.isfinite(require_well_conditioned(design))


class TestGuardedNumpy:
    def test_overflow_becomes_the_callers_error(self):
        with pytest.raises(FitError, match="floating-point"):
            with guarded_numpy(FitError, "overflow test"):
                np.exp(np.array([1e9]))

    def test_divide_becomes_the_callers_error(self):
        with pytest.raises(ValidationError):
            with guarded_numpy():
                np.array([1.0]) / np.array([0.0])

    def test_rank_warning_becomes_error_not_stderr_noise(self):
        with pytest.raises(FitError, match="rank-deficient"):
            with guarded_numpy(FitError, "rank test"):
                # Duplicate x values: rank-deficient Vandermonde matrix.
                np.polyfit([1.0, 1.0], [1.0, 2.0], deg=1)

    def test_benign_code_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with guarded_numpy():
                result = np.polyfit([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], deg=1)
        assert np.all(np.isfinite(result))

    def test_underflow_stays_silent(self):
        with guarded_numpy():
            tiny = np.array([1e-300]) * np.array([1e-300])
        assert tiny[0] == 0.0
