"""Tests for the accelerator-wall projections (Figs 15-16, Table V)."""

import pytest

from repro.errors import ProjectionError
from repro.wall.limits import accelerator_wall, wall_report_all_domains


@pytest.fixture(scope="module")
def reports(paper_model):
    return {(r.domain, r.metric): r for r in wall_report_all_domains(paper_model)}


class TestWallMechanics:
    def test_all_domains_and_metrics_covered(self, reports):
        domains = {
            "video_decoding", "gaming_graphics", "convolutional_nn",
            "bitcoin_mining",
        }
        assert {d for d, _ in reports} == domains
        assert {m for _, m in reports} == {"performance", "efficiency"}

    def test_unknown_domain_rejected(self, paper_model):
        with pytest.raises(ProjectionError):
            accelerator_wall("quantum", paper_model)

    def test_unknown_metric_rejected(self, paper_model):
        with pytest.raises(ProjectionError):
            accelerator_wall("video_decoding", paper_model, metric="latency")

    def test_projections_never_below_current_best(self, reports):
        for report in reports.values():
            assert report.projected_linear >= report.current_best
            assert report.projected_log >= report.current_best

    def test_headroom_ordered(self, reports):
        for report in reports.values():
            low, high = report.headroom
            assert 1.0 <= low <= high

    def test_linear_bound_at_least_log_bound(self, reports):
        for report in reports.values():
            assert report.projected_linear >= report.projected_log * 0.999

    def test_physical_limit_beyond_current_frontier(self, reports):
        # The 5nm wall lies beyond today's chips in every domain.
        for report in reports.values():
            assert report.physical_limit > 1.0

    def test_describe(self, reports):
        text = reports[("video_decoding", "performance")].describe()
        assert "video_decoding" in text and "headroom" in text


class TestPaperHeadrooms:
    """Paper Section VII: projected remaining improvements per domain.

    Bands are widened around the paper's reported ranges (video 3-130x /
    1.2-14x, GPU 1.4-2.5x / 1.4-1.7x, CNN 2.1-3.4x / 2.7-3.5x, Bitcoin
    2-20x / 1.4-5x) — see EXPERIMENTS.md for the measured values.
    """

    def test_video_performance_headroom(self, reports):
        low, high = reports[("video_decoding", "performance")].headroom
        assert 1.2 <= low <= 6
        assert 50 <= high <= 200

    def test_video_efficiency_headroom(self, reports):
        low, high = reports[("video_decoding", "efficiency")].headroom
        assert 1.1 <= low <= 3
        assert 3 <= high <= 16

    def test_gpu_performance_headroom(self, reports):
        low, high = reports[("gaming_graphics", "performance")].headroom
        assert 1.1 <= low <= 2.0
        assert 2.0 <= high <= 4.5

    def test_gpu_efficiency_headroom(self, reports):
        low, high = reports[("gaming_graphics", "efficiency")].headroom
        assert 1.2 <= low <= 2.2
        assert 2.0 <= high <= 4.5

    def test_cnn_performance_headroom(self, reports):
        low, high = reports[("convolutional_nn", "performance")].headroom
        assert 1.5 <= low <= 3.0
        assert 3.0 <= high <= 9.0

    def test_cnn_efficiency_headroom(self, reports):
        low, high = reports[("convolutional_nn", "efficiency")].headroom
        assert 2.0 <= low <= 3.5
        assert 4.0 <= high <= 9.0

    def test_bitcoin_performance_headroom(self, reports):
        low, high = reports[("bitcoin_mining", "performance")].headroom
        assert 1.0 <= low <= 3.0
        assert 5.0 <= high <= 25.0

    def test_bitcoin_efficiency_headroom(self, reports):
        low, high = reports[("bitcoin_mining", "efficiency")].headroom
        assert 1.0 <= low <= 2.5
        assert 2.0 <= high <= 8.0

    def test_performance_headroom_exceeds_efficiency_headroom(self, reports):
        # "performance has a promising trajectory ... energy efficiency is
        # not projected to improve at the same rate" (linear bounds).
        for domain in ("video_decoding", "convolutional_nn", "bitcoin_mining"):
            perf_high = reports[(domain, "performance")].headroom[1]
            eff_high = reports[(domain, "efficiency")].headroom[1]
            assert perf_high >= eff_high
