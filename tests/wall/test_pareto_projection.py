"""Unit + property tests for Pareto frontiers and projection fits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProjectionError
from repro.wall.pareto import upper_frontier
from repro.wall.projection import (
    FrontierFit,
    ProjectionKind,
    fit_frontier,
    fit_projections,
)


class TestUpperFrontier:
    def test_empty(self):
        assert upper_frontier([]) == []

    def test_single_point(self):
        assert upper_frontier([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_dominated_point_dropped(self):
        # (2, 1) has more capability but less gain than (1, 5): dominated.
        frontier = upper_frontier([(1.0, 5.0), (2.0, 1.0)])
        assert frontier == [(1.0, 5.0)]

    def test_monotone_staircase_kept(self):
        points = [(1.0, 1.0), (2.0, 3.0), (3.0, 9.0)]
        assert upper_frontier(points) == points

    def test_duplicate_x_keeps_best_gain(self):
        frontier = upper_frontier([(1.0, 1.0), (1.0, 4.0)])
        assert frontier == [(1.0, 4.0)]

    def test_exact_duplicate_points_collapse(self):
        frontier = upper_frontier([(1.0, 2.0), (1.0, 2.0), (1.0, 2.0)])
        assert frontier == [(1.0, 2.0)]

    def test_equal_y_keeps_cheapest_x(self):
        # The same gain at more capability is not an improvement: the
        # frontier must stay strictly increasing in y.
        frontier = upper_frontier([(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)])
        assert frontier == [(1.0, 2.0)]

    def test_mixed_ties_and_dominated_points(self):
        points = [
            (1.0, 1.0), (1.0, 3.0),   # equal-x tie: keep (1, 3)
            (2.0, 3.0),               # equal-y plateau: dropped
            (2.0, 5.0), (2.0, 5.0),   # duplicate improvement: kept once
            (3.0, 4.0),               # dominated: dropped
        ]
        assert upper_frontier(points) == [(1.0, 3.0), (2.0, 5.0)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_properties(self, points):
        frontier = upper_frontier(points)
        # Subset of input.
        assert all(p in points for p in frontier)
        # Strictly increasing in both coordinates.
        xs = [p[0] for p in frontier]
        ys = [p[1] for p in frontier]
        assert xs == sorted(xs)
        assert ys == sorted(set(ys))
        # Non-domination: no input point strictly dominates a frontier point.
        for fx, fy in frontier:
            assert not any(x <= fx and y > fy for x, y in points)


class TestFrontierFit:
    def test_linear_recovers_exact_line(self):
        points = [(x, 3.0 * x + 2.0) for x in (1.0, 2.0, 4.0, 8.0)]
        fit = fit_frontier(points, ProjectionKind.LINEAR)
        assert fit.alpha == pytest.approx(3.0)
        assert fit.beta == pytest.approx(2.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_log_recovers_exact_curve(self):
        import math

        points = [(x, 5.0 * math.log(x) + 1.0) for x in (1.0, 2.0, 4.0, 8.0)]
        fit = fit_frontier(points, ProjectionKind.LOGARITHMIC)
        assert fit.alpha == pytest.approx(5.0)
        assert fit.beta == pytest.approx(1.0)

    def test_predict_linear(self):
        fit = FrontierFit(ProjectionKind.LINEAR, 2.0, 1.0, 3, 0.0)
        assert fit.predict(10.0) == pytest.approx(21.0)

    def test_predict_log(self):
        import math

        fit = FrontierFit(ProjectionKind.LOGARITHMIC, 2.0, 1.0, 3, 0.0)
        assert fit.predict(math.e) == pytest.approx(3.0)

    def test_predict_rejects_non_positive(self):
        fit = FrontierFit(ProjectionKind.LINEAR, 1.0, 0.0, 2, 0.0)
        with pytest.raises(ProjectionError):
            fit.predict(0.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ProjectionError):
            fit_frontier([(1.0, 1.0)], ProjectionKind.LINEAR)

    def test_fit_uses_frontier_not_raw_points(self):
        # A cloud of dominated points must not drag the fit down.
        frontier = [(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)]
        noise = [(2.0, 0.5), (3.0, 1.0), (4.0, 2.0)]
        fit = fit_frontier(frontier + noise, ProjectionKind.LINEAR)
        assert fit.alpha == pytest.approx(10.0)
        assert fit.n_points == 3

    def test_fit_projections_returns_both(self):
        points = [(1.0, 1.0), (2.0, 3.0), (4.0, 5.0)]
        linear, log = fit_projections(points)
        assert linear.kind is ProjectionKind.LINEAR
        assert log.kind is ProjectionKind.LOGARITHMIC

    def test_describe(self):
        fit = FrontierFit(ProjectionKind.LOGARITHMIC, 2.0, 1.0, 3, 0.1)
        assert "log(x)" in fit.describe()

    def test_linear_grows_faster_than_log_beyond_data(self):
        points = [(1.0, 1.0), (2.0, 2.0), (4.0, 4.0), (8.0, 8.0)]
        linear, log = fit_projections(points)
        assert linear.predict(1000.0) > log.predict(1000.0)

    def test_rejects_non_finite_points(self):
        with pytest.raises(ProjectionError):
            fit_frontier(
                [(1.0, 1.0), (2.0, float("nan"))], ProjectionKind.LINEAR
            )

    def test_rejects_degenerate_single_x(self):
        # Every point at the same capability collapses the frontier to one
        # point; the fit line would be vertical.
        with pytest.raises(ProjectionError):
            fit_frontier(
                [(1.0, 1.0), (1.0, 2.0), (1.0, 3.0)], ProjectionKind.LINEAR
            )


class TestPredictClamp:
    """The documented (and historically unimplemented) frontier clamp."""

    # The confirmed repro from the bug report: a saturating log-shaped
    # dataset whose fit line sits far below the achieved frontier at the
    # left edge of the data.
    POINTS = [(1.0, 1.0), (2.0, 3.0), (4.0, 3.2), (8.0, 3.25)]

    def test_log_fit_never_predicts_below_achieved_frontier(self):
        fit = fit_frontier(self.POINTS, ProjectionKind.LOGARITHMIC)
        assert fit.max_fitted_gain == pytest.approx(3.25)
        # Unclamped, the model value at x=1 is beta ~ 1.57 — a projection
        # that "regresses" 52% under the already-achieved 3.25.
        assert fit.alpha * 0.0 + fit.beta < 3.25
        assert fit.predict(1.0) >= 3.25

    def test_linear_fit_clamped_too(self):
        fit = fit_frontier(self.POINTS, ProjectionKind.LINEAR)
        assert fit.predict(1.0) >= fit.max_fitted_gain

    def test_clamp_inactive_beyond_the_data(self):
        fit = fit_frontier(self.POINTS, ProjectionKind.LOGARITHMIC)
        import math

        raw = fit.alpha * math.log(1000.0) + fit.beta
        assert fit.predict(1000.0) == pytest.approx(raw)
        assert raw > fit.max_fitted_gain

    def test_hand_built_fit_has_no_clamp(self):
        # Fits constructed directly (paper constants, tests) keep the raw
        # model: max_fitted_gain defaults to -inf.
        fit = FrontierFit(ProjectionKind.LINEAR, 2.0, 1.0, 3, 0.0)
        assert fit.predict(0.001) == pytest.approx(1.002)

    def test_fit_projections_clamp_both_models(self):
        for fit in fit_projections(self.POINTS):
            assert fit.predict(1.0) >= 3.25
