"""Unit + property tests for Pareto frontiers and projection fits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProjectionError
from repro.wall.pareto import upper_frontier
from repro.wall.projection import (
    FrontierFit,
    ProjectionKind,
    fit_frontier,
    fit_projections,
)


class TestUpperFrontier:
    def test_empty(self):
        assert upper_frontier([]) == []

    def test_single_point(self):
        assert upper_frontier([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_dominated_point_dropped(self):
        # (2, 1) has more capability but less gain than (1, 5): dominated.
        frontier = upper_frontier([(1.0, 5.0), (2.0, 1.0)])
        assert frontier == [(1.0, 5.0)]

    def test_monotone_staircase_kept(self):
        points = [(1.0, 1.0), (2.0, 3.0), (3.0, 9.0)]
        assert upper_frontier(points) == points

    def test_duplicate_x_keeps_best_gain(self):
        frontier = upper_frontier([(1.0, 1.0), (1.0, 4.0)])
        assert frontier == [(1.0, 4.0)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_properties(self, points):
        frontier = upper_frontier(points)
        # Subset of input.
        assert all(p in points for p in frontier)
        # Strictly increasing in both coordinates.
        xs = [p[0] for p in frontier]
        ys = [p[1] for p in frontier]
        assert xs == sorted(xs)
        assert ys == sorted(set(ys))
        # Non-domination: no input point strictly dominates a frontier point.
        for fx, fy in frontier:
            assert not any(x <= fx and y > fy for x, y in points)


class TestFrontierFit:
    def test_linear_recovers_exact_line(self):
        points = [(x, 3.0 * x + 2.0) for x in (1.0, 2.0, 4.0, 8.0)]
        fit = fit_frontier(points, ProjectionKind.LINEAR)
        assert fit.alpha == pytest.approx(3.0)
        assert fit.beta == pytest.approx(2.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_log_recovers_exact_curve(self):
        import math

        points = [(x, 5.0 * math.log(x) + 1.0) for x in (1.0, 2.0, 4.0, 8.0)]
        fit = fit_frontier(points, ProjectionKind.LOGARITHMIC)
        assert fit.alpha == pytest.approx(5.0)
        assert fit.beta == pytest.approx(1.0)

    def test_predict_linear(self):
        fit = FrontierFit(ProjectionKind.LINEAR, 2.0, 1.0, 3, 0.0)
        assert fit.predict(10.0) == pytest.approx(21.0)

    def test_predict_log(self):
        import math

        fit = FrontierFit(ProjectionKind.LOGARITHMIC, 2.0, 1.0, 3, 0.0)
        assert fit.predict(math.e) == pytest.approx(3.0)

    def test_predict_rejects_non_positive(self):
        fit = FrontierFit(ProjectionKind.LINEAR, 1.0, 0.0, 2, 0.0)
        with pytest.raises(ProjectionError):
            fit.predict(0.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ProjectionError):
            fit_frontier([(1.0, 1.0)], ProjectionKind.LINEAR)

    def test_fit_uses_frontier_not_raw_points(self):
        # A cloud of dominated points must not drag the fit down.
        frontier = [(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)]
        noise = [(2.0, 0.5), (3.0, 1.0), (4.0, 2.0)]
        fit = fit_frontier(frontier + noise, ProjectionKind.LINEAR)
        assert fit.alpha == pytest.approx(10.0)
        assert fit.n_points == 3

    def test_fit_projections_returns_both(self):
        points = [(1.0, 1.0), (2.0, 3.0), (4.0, 5.0)]
        linear, log = fit_projections(points)
        assert linear.kind is ProjectionKind.LINEAR
        assert log.kind is ProjectionKind.LOGARITHMIC

    def test_describe(self):
        fit = FrontierFit(ProjectionKind.LOGARITHMIC, 2.0, 1.0, 3, 0.1)
        assert "log(x)" in fit.describe()

    def test_linear_grows_faster_than_log_beyond_data(self):
        points = [(1.0, 1.0), (2.0, 2.0), (4.0, 4.0), (8.0, 8.0)]
        linear, log = fit_projections(points)
        assert linear.predict(1000.0) > log.predict(1000.0)
