"""Tests for the wall sensitivity analysis."""

import pytest

from repro.wall.sensitivity import headroom_spread, wall_sensitivity


@pytest.fixture(scope="module")
def sweep(paper_model):
    return wall_sensitivity(
        "convolutional_nn",
        paper_model,
        metric="performance",
        die_scales=(0.5, 1.0, 2.0),
        tdp_scales=(0.5, 1.0, 2.0),
    )


class TestSensitivity:
    def test_grid_size(self, sweep):
        assert len(sweep) == 9

    def test_unperturbed_point_matches_wall_report(self, sweep, paper_model):
        from repro.wall import accelerator_wall

        nominal = next(
            p for p in sweep if p.die_scale == 1.0 and p.tdp_scale == 1.0
        )
        report = accelerator_wall("convolutional_nn", paper_model)
        low, high = report.headroom
        assert nominal.headroom_low == pytest.approx(low)
        assert nominal.headroom_high == pytest.approx(high)

    def test_bigger_die_never_reduces_physical_limit(self, sweep):
        by_scale = {}
        for p in sweep:
            if p.tdp_scale == 2.0:  # generous power: die is the binding limit
                by_scale[p.die_scale] = p.physical_limit
        assert by_scale[0.5] <= by_scale[1.0] <= by_scale[2.0]

    def test_more_power_never_reduces_physical_limit(self, sweep):
        by_scale = {}
        for p in sweep:
            if p.die_scale == 2.0:
                by_scale[p.tdp_scale] = p.physical_limit
        assert by_scale[0.5] <= by_scale[1.0] <= by_scale[2.0]

    def test_headroom_spread(self, sweep):
        low, high = headroom_spread(sweep)
        assert 1.0 <= low <= high

    def test_headroom_spread_empty_rejected(self):
        with pytest.raises(ValueError):
            headroom_spread([])

    def test_efficiency_metric_supported(self, paper_model):
        points = wall_sensitivity(
            "video_decoding", paper_model, metric="efficiency",
            die_scales=(1.0,), tdp_scales=(1.0,),
        )
        assert len(points) == 1
        assert points[0].headroom_low >= 1.0

    def test_frequency_scale_dimension(self, paper_model):
        points = wall_sensitivity(
            "gaming_graphics", paper_model,
            die_scales=(1.0,), tdp_scales=(1.0,),
            frequency_scales=(0.8, 1.0, 1.2),
        )
        assert len(points) == 3
