"""Tests for the MCM wall-surmounting extension."""

import pytest

from repro.errors import ProjectionError
from repro.wall.surmount import mcm_wall, mcm_walls_all_domains


class TestMcmWall:
    @pytest.fixture(scope="class")
    def gpu_mcm(self, paper_model):
        return mcm_wall("gaming_graphics", n_chiplets=4, model=paper_model)

    def test_single_chiplet_is_identity(self, paper_model):
        single = mcm_wall("gaming_graphics", n_chiplets=1, model=paper_model)
        assert single.mcm_physical_limit == pytest.approx(
            single.monolithic.physical_limit
        )
        assert single.efficiency_factor == pytest.approx(1.0)

    def test_chiplets_extend_physical_limit_sublinearly(self, gpu_mcm):
        ratio = gpu_mcm.mcm_physical_limit / gpu_mcm.monolithic.physical_limit
        assert 3.0 < ratio < 4.0  # 4 chiplets minus communication losses

    def test_performance_wall_moves(self, gpu_mcm):
        assert gpu_mcm.extra_headroom > 1.5

    def test_efficiency_wall_does_not_move(self, gpu_mcm):
        # The paper's efficiency limits survive MCM integration.
        assert not gpu_mcm.moves_efficiency_wall
        assert gpu_mcm.efficiency_factor < 1.0

    def test_more_chiplets_more_headroom_less_efficiency(self, paper_model):
        two = mcm_wall("bitcoin_mining", 2, paper_model)
        eight = mcm_wall("bitcoin_mining", 8, paper_model)
        assert eight.mcm_projected_linear > two.mcm_projected_linear
        assert eight.efficiency_factor < two.efficiency_factor

    def test_all_domains(self, paper_model):
        walls = mcm_walls_all_domains(4, paper_model)
        assert len(walls) == 4
        for wall in walls:
            assert wall.extra_headroom >= 1.0
            assert "chiplets" in wall.describe()

    def test_bad_chiplet_count(self, paper_model):
        with pytest.raises(ProjectionError):
            mcm_wall("gaming_graphics", 0, paper_model)
