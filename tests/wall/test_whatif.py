"""Tests for the time-to-wall estimation."""

import pytest

from repro.errors import ProjectionError
from repro.wall.whatif import time_to_wall, time_to_wall_all_domains


class TestTimeToWall:
    @pytest.fixture(scope="class")
    def estimates(self, paper_model):
        return {t.domain: t for t in time_to_wall_all_domains(paper_model)}

    def test_all_domains_estimated(self, estimates):
        assert set(estimates) == {
            "video_decoding", "gaming_graphics", "convolutional_nn",
            "bitcoin_mining",
        }

    def test_rates_positive_and_plausible(self, estimates):
        for estimate in estimates.values():
            assert 1.0 < estimate.annual_gain_rate < 10.0

    def test_bitcoin_pace_fastest(self, estimates):
        # The mining arms race outpaced every other domain.
        bitcoin_rate = estimates["bitcoin_mining"].annual_gain_rate
        for domain, estimate in estimates.items():
            if domain != "bitcoin_mining":
                assert bitcoin_rate > estimate.annual_gain_rate

    def test_years_ordered(self, estimates):
        for estimate in estimates.values():
            assert 0 <= estimate.years_to_wall_low <= estimate.years_to_wall_high

    def test_wall_years_near_horizon(self, estimates):
        # Every domain's wall lands within ~15 years of its last data point
        # at historical pace — the paper's urgency, quantified.
        for estimate in estimates.values():
            low_year, high_year = estimate.wall_year_range
            assert low_year >= estimate.last_observation_year
            assert high_year <= estimate.last_observation_year + 15

    def test_describe(self, estimates):
        text = estimates["video_decoding"].describe()
        assert "x/yr" in text and "wall" in text

    def test_unknown_domain_rejected(self, paper_model):
        with pytest.raises(ProjectionError):
            time_to_wall("quantum", paper_model)
