"""Property test: Winograd and direct convolution agree on arbitrary inputs.

The algorithmic-CSR argument only stands if the two algorithms are truly
interchangeable; hypothesis drives both traced kernels over random images
and checks elementwise agreement against the numpy reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfg.graph import NodeKind
from repro.workloads import conv


def _outputs_by_label(kernel):
    labels = [
        node.label for node in kernel.dfg.nodes()
        if node.kind is NodeKind.OUTPUT
    ]
    return dict(zip(labels, kernel.output_values))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_winograd_equals_direct_for_any_seed(seed):
    image, n = conv.build_inputs(n=6, seed=seed)
    reference = conv.reference(image, n)
    direct = _outputs_by_label(conv.build_direct(n=6, seed=seed))
    winograd = _outputs_by_label(conv.build_winograd(n=6, seed=seed))
    for i in range(n - 2):
        for j in range(n - 2):
            label = f"y[{i},{j}]"
            want = reference[i * (n - 2) + j]
            assert direct[label] == pytest.approx(want, abs=1e-9)
            assert winograd[label] == pytest.approx(want, abs=1e-9)


@given(st.sampled_from([4, 6, 8, 10]))
@settings(max_examples=8, deadline=None)
def test_multiply_ratio_holds_at_every_size(n):
    direct = conv.multiply_count(conv.build_direct(n=n))
    winograd = conv.multiply_count(conv.build_winograd(n=n))
    assert direct / winograd == pytest.approx(36 / 16)
