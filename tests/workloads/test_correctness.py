"""Every traced kernel's concrete output must match its reference.

This is the substrate-fidelity check: the dynamic DFGs the scheduler
consumes are traces of *correct* executions of the Table IV kernels.
"""

import numpy as np
import pytest

from repro.workloads import (
    aes, bfs, fft, gmm, knn, mdy, nwn, rbm, red, sad, smv, srt, ssp, s2d,
    s3d, trd,
)


def assert_close(got, want, tol=1e-6):
    assert np.allclose(
        np.asarray(got, dtype=float), np.asarray(want, dtype=float), atol=tol
    )


class TestTracedResults:
    def test_aes_matches_fips_vector(self, all_kernels):
        got = bytes(int(v) for v in all_kernels["aes"].output_values)
        assert got == aes.FIPS_CIPHERTEXT

    def test_aes_reference_matches_fips_vector(self):
        assert aes.reference() == aes.FIPS_CIPHERTEXT

    def test_fft_matches_numpy(self, all_kernels):
        got = list(all_kernels["fft"].output_values)
        want_re, want_im = fft.reference(*fft.build_inputs())
        assert_close(got[0::2], want_re)
        assert_close(got[1::2], want_im)

    def test_gmm_matches_numpy(self, all_kernels):
        assert_close(
            all_kernels["gmm"].output_values, gmm.reference(*gmm.build_inputs())
        )

    def test_trd_matches_reference(self, all_kernels):
        b, c = trd.build_inputs()
        assert_close(
            all_kernels["trd"].output_values,
            trd.reference(b, c, trd.DEFAULT_SCALAR),
        )

    def test_red_matches_sum(self, all_kernels):
        (data,) = red.build_inputs()
        assert_close(all_kernels["red"].output_values, [red.reference(data)])

    def test_sad_matches_reference(self, all_kernels):
        assert list(all_kernels["sad"].output_values) == sad.reference(
            *sad.build_inputs()
        )

    def test_s2d_matches_numpy(self, all_kernels):
        assert_close(
            all_kernels["s2d"].output_values, s2d.reference(*s2d.build_inputs())
        )

    def test_s3d_matches_numpy(self, all_kernels):
        assert_close(
            all_kernels["s3d"].output_values, s3d.reference(*s3d.build_inputs())
        )

    def test_smv_matches_dense_expansion(self, all_kernels):
        assert_close(
            all_kernels["smv"].output_values, smv.reference(*smv.build_inputs())
        )

    def test_ssp_matches_bellman_ford(self, all_kernels):
        assert_close(
            all_kernels["ssp"].output_values, ssp.reference(*ssp.build_inputs())
        )

    def test_bfs_matches_reference_levels(self, all_kernels):
        got = [int(v) for v in all_kernels["bfs"].output_values]
        assert got == bfs.reference(*bfs.build_inputs())

    def test_nwn_matches_dp_score(self, all_kernels):
        assert int(all_kernels["nwn"].output_values[0]) == nwn.reference(
            *nwn.build_inputs()
        )

    def test_srt_output_is_sorted(self, all_kernels):
        got = list(all_kernels["srt"].output_values)
        assert got == sorted(got)

    def test_srt_matches_reference(self, all_kernels):
        assert_close(
            all_kernels["srt"].output_values, srt.reference(*srt.build_inputs())
        )

    def test_knn_matches_reference(self, all_kernels):
        assert_close(
            all_kernels["knn"].output_values, knn.reference(*knn.build_inputs())
        )

    def test_mdy_matches_reference(self, all_kernels):
        flat = [x for force in mdy.reference(*mdy.build_inputs()) for x in force]
        assert_close(all_kernels["mdy"].output_values, flat)

    def test_rbm_matches_reference(self, all_kernels):
        assert_close(
            all_kernels["rbm"].output_values, rbm.reference(*rbm.build_inputs())
        )


class TestParameterisation:
    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft.build(n=12)

    def test_aes_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            aes.build(plaintext=b"short", key=b"0" * 16)

    def test_gmm_smaller_size(self):
        kernel = gmm.build(n=4)
        assert_close(kernel.output_values, gmm.reference(*gmm.build_inputs(n=4)))

    def test_trd_custom_scalar(self):
        kernel = trd.build(n=8, scalar=2.5)
        b, c = trd.build_inputs(n=8)
        assert_close(kernel.output_values, trd.reference(b, c, 2.5))

    def test_red_non_power_of_two_length(self):
        kernel = red.build(n=7)
        (data,) = red.build_inputs(n=7)
        assert_close(kernel.output_values, [red.reference(data)])

    def test_srt_different_seed_still_sorted(self):
        kernel = srt.build(n=16, seed=99)
        got = list(kernel.output_values)
        assert got == sorted(got)

    def test_ssp_deterministic_graph(self):
        edges_a, _ = ssp.build_inputs()
        edges_b, _ = ssp.build_inputs()
        assert edges_a == edges_b
