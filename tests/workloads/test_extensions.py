"""Tests for the extension workloads: SHA-256 and direct/Winograd conv."""

import hashlib

import pytest

from repro.dfg.graph import NodeKind
from repro.workloads import conv, sha256


def _outputs_by_label(kernel):
    labels = [
        node.label for node in kernel.dfg.nodes()
        if node.kind is NodeKind.OUTPUT
    ]
    return dict(zip(labels, kernel.output_values))


class TestSha256:
    def test_reference_matches_hashlib(self):
        digest = sha256.reference()
        expected = hashlib.sha256(b"abc").hexdigest()
        assert "".join(f"{w:08x}" for w in digest) == expected

    def test_reference_matches_fips_vector(self):
        assert sha256.reference() == sha256.ABC_DIGEST

    def test_traced_matches_reference(self):
        kernel = sha256.build()
        assert [int(v) for v in kernel.output_values] == sha256.ABC_DIGEST

    def test_arbitrary_block(self):
        block = [0xDEADBEEF + i for i in range(16)]
        kernel = sha256.build(block)
        assert [int(v) for v in kernel.output_values] == sha256.reference(block)

    def test_reduced_rounds_traced_matches_reference(self):
        kernel = sha256.build(rounds=24)
        assert [int(v) for v in kernel.output_values] == sha256.reference(
            rounds=24
        )

    def test_round_bounds_validated(self):
        with pytest.raises(ValueError):
            sha256.build(rounds=8)
        with pytest.raises(ValueError):
            sha256.build(rounds=65)

    def test_block_length_validated(self):
        with pytest.raises(ValueError):
            sha256.build([1, 2, 3])

    def test_double_sha_differs_per_nonce(self):
        a = sha256.double_sha_header(nonce=0, rounds=20)
        b = sha256.double_sha_header(nonce=1, rounds=20)
        assert a.output_values != b.output_values

    def test_kernel_is_schedulable(self):
        from repro.accel.design import DesignPoint
        from repro.accel.power import evaluate_design

        kernel = sha256.build(rounds=20)
        report = evaluate_design(kernel, DesignPoint(node_nm=16, partition=16))
        assert report.cycles > 0

    def test_mostly_alu_work(self):
        # SHA-256 is pure 32-bit logic/arithmetic: no multiplies at all.
        kernel = sha256.build(rounds=20)
        ops = {node.op for node in kernel.dfg.nodes() if node.op}
        assert "mul" not in ops
        assert "div" not in ops


class TestConvolution:
    @pytest.fixture(scope="class")
    def reference_map(self):
        image, n = conv.build_inputs()
        flat = conv.reference(image, n)
        return {
            f"y[{i},{j}]": flat[i * (n - 2) + j]
            for i in range(n - 2)
            for j in range(n - 2)
        }

    def test_direct_matches_reference(self, reference_map):
        outputs = _outputs_by_label(conv.build_direct())
        for label, expected in reference_map.items():
            assert outputs[label] == pytest.approx(expected, abs=1e-9)

    def test_winograd_matches_reference(self, reference_map):
        outputs = _outputs_by_label(conv.build_winograd())
        for label, expected in reference_map.items():
            assert outputs[label] == pytest.approx(expected, abs=1e-9)

    def test_winograd_needs_even_output(self):
        with pytest.raises(ValueError):
            conv.build_winograd(n=7)

    def test_multiply_reduction_is_exactly_2_25x(self):
        direct = conv.multiply_count(conv.build_direct())
        winograd = conv.multiply_count(conv.build_winograd())
        assert direct / winograd == pytest.approx(36 / 16)

    def test_algorithmic_csr_at_fixed_budget(self):
        # Same design point, same node: Winograd wins on energy per result —
        # a pure algorithm-layer CSR improvement.
        from repro.accel.design import DesignPoint
        from repro.accel.power import evaluate_design

        design = DesignPoint(node_nm=28, partition=16)
        direct = evaluate_design(conv.build_direct(), design)
        winograd = evaluate_design(conv.build_winograd(), design)
        assert winograd.dynamic_energy_nj < direct.dynamic_energy_nj
        assert winograd.runtime_s <= direct.runtime_s * 1.35

    def test_larger_images(self):
        image, n = conv.build_inputs(n=12, seed=5)
        flat = conv.reference(image, n)
        outputs = _outputs_by_label(conv.build_winograd(n=12, seed=5))
        assert outputs["y[0,0]"] == pytest.approx(flat[0], abs=1e-9)
        assert len(outputs) == (n - 2) ** 2
