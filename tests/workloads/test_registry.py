"""Tests for the Table IV workload registry and kernel structure."""

import pytest

from repro.dfg.analysis import analyze
from repro.errors import DatasetError
from repro.workloads import WORKLOADS, build_kernel, get_workload


class TestRegistry:
    def test_sixteen_workloads(self):
        assert len(WORKLOADS) == 16

    def test_abbreviations_unique(self):
        abbrevs = [w.abbrev for w in WORKLOADS]
        assert len(set(abbrevs)) == 16

    def test_table4_rows(self):
        by_abbrev = {w.abbrev: w for w in WORKLOADS}
        assert by_abbrev["AES"].domain == "Cryptography"
        assert by_abbrev["BFS"].domain == "Graph Processing"
        assert by_abbrev["S3D"].domain == "Image Processing"
        assert by_abbrev["RBM"].domain == "Machine Learning"
        assert by_abbrev["SMV"].name == "Sparse Matrix-Vector Multiply"

    def test_lookup_case_insensitive(self):
        assert get_workload("fft").abbrev == "FFT"

    def test_unknown_workload_raises(self):
        with pytest.raises(DatasetError):
            get_workload("ZZZ")

    def test_build_kernel_by_abbrev(self):
        kernel = build_kernel("TRD", n=8)
        assert kernel.name == "trd"
        assert len(kernel.dfg) > 0


class TestKernelStructure:
    def test_all_kernels_validate(self, all_kernels):
        assert len(all_kernels) == 16
        for kernel in all_kernels.values():
            kernel.dfg.validate()

    def test_all_kernels_have_outputs(self, all_kernels):
        for kernel in all_kernels.values():
            assert len(kernel.dfg.outputs()) >= 1
            assert len(kernel.output_values) == len(kernel.dfg.outputs())

    def test_all_kernels_count_memory_traffic(self, all_kernels):
        for kernel in all_kernels.values():
            assert kernel.memory_reads > 0
            assert kernel.total_accesses >= kernel.memory_reads

    def test_kernels_are_parallel(self, all_kernels):
        # Accelerated workloads possess high parallelism (paper Section III);
        # every kernel's DFG must expose more than trivial concurrency.
        for name, kernel in all_kernels.items():
            stats = analyze(kernel.dfg)
            assert stats.max_working_set >= 4, name

    def test_kernel_sizes_reasonable(self, all_kernels):
        for name, kernel in all_kernels.items():
            assert 50 <= len(kernel.dfg) <= 20_000, name

    def test_builds_are_deterministic(self):
        a = build_kernel("S3D")
        b = build_kernel("S3D")
        assert len(a.dfg) == len(b.dfg)
        assert a.output_values == b.output_values
        assert a.memory_reads == b.memory_reads
