"""Size-matrix correctness: kernels stay correct as their sizes scale."""

import numpy as np
import pytest

from repro.workloads import bfs, fft, gmm, nwn, red, s2d, s3d, smv, srt, ssp, trd


def close(got, want):
    return np.allclose(np.asarray(got, float), np.asarray(want, float), atol=1e-6)


class TestFftSizes:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_sizes(self, n):
        kernel = fft.build(n=n)
        want_re, want_im = fft.reference(*fft.build_inputs(n=n))
        got = list(kernel.output_values)
        assert close(got[0::2], want_re)
        assert close(got[1::2], want_im)


class TestGmmSizes:
    @pytest.mark.parametrize("n", [2, 3, 5, 12])
    def test_sizes(self, n):
        kernel = gmm.build(n=n)
        assert close(kernel.output_values, gmm.reference(*gmm.build_inputs(n=n)))


class TestGraphKernels:
    @pytest.mark.parametrize("seed", [901, 17, 99])
    def test_bfs_seeds(self, seed):
        kernel = bfs.build(seed=seed)
        assert [int(v) for v in kernel.output_values] == bfs.reference(
            *bfs.build_inputs(seed=seed)
        )

    @pytest.mark.parametrize("n_vertices,n_edges", [(6, 10), (16, 40), (20, 80)])
    def test_bfs_shapes(self, n_vertices, n_edges):
        kernel = bfs.build(n_vertices=n_vertices, n_edges=n_edges)
        assert [int(v) for v in kernel.output_values] == bfs.reference(
            *bfs.build_inputs(n_vertices=n_vertices, n_edges=n_edges)
        )

    @pytest.mark.parametrize("n_vertices,n_edges", [(5, 8), (10, 30)])
    def test_ssp_shapes(self, n_vertices, n_edges):
        kernel = ssp.build(n_vertices=n_vertices, n_edges=n_edges)
        assert close(
            kernel.output_values,
            ssp.reference(*ssp.build_inputs(n_vertices=n_vertices, n_edges=n_edges)),
        )


class TestStencilSizes:
    @pytest.mark.parametrize("n", [3, 4, 7, 12])
    def test_s2d(self, n):
        kernel = s2d.build(n=n)
        assert close(kernel.output_values, s2d.reference(*s2d.build_inputs(n=n)))

    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_s3d(self, n):
        kernel = s3d.build(n=n)
        assert close(kernel.output_values, s3d.reference(*s3d.build_inputs(n=n)))


class TestSortingAndAlignment:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 48])
    def test_srt_sizes(self, n):
        kernel = srt.build(n=n)
        assert close(kernel.output_values, srt.reference(*srt.build_inputs(n=n)))

    @pytest.mark.parametrize("length", [2, 5, 20])
    def test_nwn_lengths(self, length):
        kernel = nwn.build(length=length)
        assert int(kernel.output_values[0]) == nwn.reference(
            *nwn.build_inputs(length=length)
        )


class TestVectorKernels:
    @pytest.mark.parametrize("n", [1, 2, 5, 100])
    def test_red_sizes(self, n):
        kernel = red.build(n=n)
        (data,) = red.build_inputs(n=n)
        assert close(kernel.output_values, [red.reference(data)])

    @pytest.mark.parametrize("n", [1, 16, 128])
    def test_trd_sizes(self, n):
        kernel = trd.build(n=n)
        b, c = trd.build_inputs(n=n)
        assert close(kernel.output_values, trd.reference(b, c, trd.DEFAULT_SCALAR))

    @pytest.mark.parametrize("n,density", [(4, 0.5), (24, 0.1), (16, 0.9)])
    def test_smv_shapes(self, n, density):
        kernel = smv.build(n=n, density=density)
        assert close(
            kernel.output_values,
            smv.reference(*smv.build_inputs(n=n, density=density)),
        )
